// Package policy is the sim side of the fixture: it declares the mirrored
// knob struct and seeds one drift of each kind the vocab rule reports.
package policy

import (
	"vocabmod/internal/obs"
	"vocabmod/internal/trace"
)

// Split is the sim-side knob surface, mirrored against serve.Config.
//
//lint:mirror vocabmod/internal/serve.Config
type Split struct {
	// Alpha mirrors cleanly.
	Alpha float64
	// MaxQueue exists only here: flagged as a one-sided knob.
	MaxQueue int
	// PartialPreemption is exempt: no report.
	//lint:mirror-exempt fixture: sim-only ablation knob
	PartialPreemption bool
	// TimeScale drifts in type (float64 here, int on the serve side).
	TimeScale float64
	// Partitions mirrors cleanly: the spatial-sharing knob pair.
	Partitions int
}

// Outcomes references both reasons, so the sim side is fully spoken.
func Outcomes() []string {
	return []string{trace.ReasonDeadline, trace.ReasonCanceled}
}

// Register spells a family name as a literal: flagged.
func Register(r *obs.Registry) int {
	return r.Counter("split_preemptions_total")
}

// Kind types a string literal as trace.EventKind: flagged.
func Kind() trace.EventKind {
	var k trace.EventKind = "grant"
	return k
}
