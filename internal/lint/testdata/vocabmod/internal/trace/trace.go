// Package trace declares the shared vocabulary the vocab rule pins: event
// kinds and drop reasons both layers must reference.
package trace

// EventKind names one scheduling event type.
type EventKind string

// KindGrant is the canonical grant event.
const KindGrant EventKind = "grant"

// Shared drop reasons. ReasonDeadline is spoken by both layers (clean);
// ReasonCanceled is referenced only from the sim side, so the rule flags
// the missing serve-side reference at this declaration.
const (
	ReasonDeadline = "deadline"
	ReasonCanceled = "canceled"
)
