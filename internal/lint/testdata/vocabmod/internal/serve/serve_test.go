// In-package test file: LoadModule type-checks it as part of the augmented
// serve unit, and the metric-family rule applies to tests too — a test
// spelling a family by hand is exactly how dashboards drift.
package serve

import (
	"testing"

	"vocabmod/internal/obs"
)

func TestScrape(t *testing.T) {
	var r obs.Registry
	if r.Histogram("split_wait_ms") != 0 {
		t.Fatal("unexpected")
	}
}
