// Package serve is the serving side of the fixture: the mirror target plus
// serve-side vocabulary drift.
package serve

import (
	"vocabmod/internal/obs"
	"vocabmod/internal/trace"
)

// Config is the mirror target of policy.Split.
type Config struct {
	// Alpha mirrors cleanly.
	Alpha float64
	// TimeScale is int here but float64 on the sim side: type drift.
	TimeScale int
	// Devices exists only here: flagged as a one-sided knob.
	Devices int
	// Partitions mirrors cleanly: the spatial-sharing knob pair.
	Partitions int
	// Reg is exempt: no report.
	//lint:mirror-exempt fixture: serve-only wiring
	Reg *obs.Registry
	// Sink carries a malformed exempt directive (no reason): the directive
	// is reported; the field still counts as exempt.
	//lint:mirror-exempt
	Sink func(string)
}

// Drop references ReasonDeadline properly but spells "canceled" as a bare
// literal: the literal is flagged, and because a literal is not a
// reference, trace.ReasonCanceled is also flagged as unspoken here.
func Drop() string {
	_ = trace.ReasonDeadline
	return "canceled"
}

// Register references the canonical constant: clean.
func Register(r *obs.Registry) int {
	return r.Gauge(obs.MetricQueueDepth)
}

// RegisterPartition spells a partition-lane family as a literal: flagged —
// the spatial-sharing families obey the same vocabulary discipline.
func RegisterPartition(r *obs.Registry) int {
	return r.Gauge("split_partition_width")
}
