package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder lifts lockdiscipline's flow-sensitive facts into an
// inter-procedural lock-acquisition graph across the concurrent layers
// (internal/sched, internal/serve, internal/obs, internal/gpusim). Mutex
// names are canonicalized to their owning type ("serve.Server.mu",
// "obs.Registry.mu"), so the same lock has one node no matter which method
// touches it. The rule reports
//
//   - lock-order cycles: lock B acquired (directly or through any chain of
//     module-local calls) while A is held, and elsewhere A while B is held —
//     the classic ABBA deadlock the race detector only finds when both
//     paths collide at runtime; a self-edge (re-acquiring a held mutex) is
//     the degenerate immediate deadlock;
//   - escapes reachable *through a call* while a mutex is held: a call into
//     a module-local function — in any package — that transitively sends on
//     a channel or invokes a sink Emit. Same-package escapes in serve/obs
//     stay lockdiscipline's report, so each defect is named exactly once;
//   - in sched/gpusim (which lockdiscipline does not cover), the direct
//     forms too: channel sends and Emit calls while a mutex is held.
var Lockorder = &Analyzer{
	Name:      "lockorder",
	Doc:       "inter-procedural lock-order cycles and escapes reachable while a mutex is held in sched/serve/obs/gpusim",
	RunModule: runLockorder,
}

// lockorderScope lists the module-relative directories the rule covers,
// and whether lockdiscipline already reports their direct escapes.
var lockorderScope = map[string]bool{ // rel -> lockdiscipline covers it
	"internal/sched":  false,
	"internal/serve":  true,
	"internal/obs":    true,
	"internal/gpusim": false,
}

// lockEdge is one acquisition-order observation: `to` was acquired at pos
// (in package p) while `from` was held; via explains indirect edges.
type lockEdge struct {
	from, to string
	p        *Package
	pos      token.Pos
	via      string // "" for a direct acquisition
}

// lockFacts is one function's contribution to the module-wide analysis.
type lockFacts struct {
	p    *Package
	name string
	// acquires is every mutex this function may lock, regardless of flow.
	acquires map[string]bool
	// calls is every synchronous static call to a module-local function.
	calls []callRef
	// escape is non-empty when the body directly sends or calls Emit.
	escape string
	// heldCalls are calls made while at least one mutex was held.
	heldCalls []heldCall
	// heldAcquires are direct acquisitions made while other locks were held.
	heldAcquires []heldAcquire
}

type heldCall struct {
	pos    token.Pos
	key    string // callee funcKey ("" for dynamic calls)
	name   string
	held   []string
	isEmit bool
}

type heldAcquire struct {
	pos  token.Pos
	key  string
	held []string
}

func runLockorder(pkgs []*Package, report ModuleReportFunc) {
	facts := map[string]*lockFacts{}
	var order []string // deterministic iteration for reporting
	for _, p := range pkgs {
		if _, ok := lockorderScope[p.Rel]; !ok || isTestPackage(p) {
			continue
		}
		for _, f := range p.Files {
			if isTestFile(p, f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(fn)
				if _, dup := facts[key]; dup {
					continue // regenerated method sets etc.; first body wins
				}
				facts[key] = scanLockFacts(p, fd, fn)
				order = append(order, key)
			}
		}
	}
	sort.Strings(order)

	// Transitive may-acquire sets and escape reasons, to a fixpoint over
	// the module-local call graph.
	transAcq := map[string]map[string]bool{}
	escape := map[string]string{}
	for key, lf := range facts {
		transAcq[key] = copySet(lf.acquires)
		if lf.escape != "" {
			escape[key] = lf.escape
		}
	}
	for changed := true; changed; {
		changed = false
		for key, lf := range facts {
			for _, c := range lf.calls {
				for a := range transAcq[c.key] {
					if !transAcq[key][a] {
						transAcq[key][a] = true
						changed = true
					}
				}
				if escape[key] == "" && escape[c.key] != "" {
					escape[key] = fmt.Sprintf("calls %s, which %s", c.name, escape[c.key])
					changed = true
				}
			}
		}
	}

	// Build the acquisition-order graph and report escapes at held calls.
	var edges []lockEdge
	for _, key := range order {
		lf := facts[key]
		for _, ha := range lf.heldAcquires {
			for _, h := range ha.held {
				edges = append(edges, lockEdge{from: h, to: ha.key, p: lf.p, pos: ha.pos})
			}
		}
		covered := lockorderScope[lf.p.Rel]
		for _, hc := range lf.heldCalls {
			for a := range transAcq[hc.key] {
				for _, h := range hc.held {
					edges = append(edges, lockEdge{from: h, to: a, p: lf.p, pos: hc.pos,
						via: hc.name})
				}
			}
			switch {
			case hc.name == "<send>": // recorded only where lockdiscipline does not run
				report(lf.p, hc.pos,
					"channel send with %s held: a blocked receiver deadlocks the lock owner; buffer and send after unlocking",
					strings.Join(hc.held, ", "))
			case hc.isEmit && !covered:
				report(lf.p, hc.pos,
					"sink Emit called with %s held: the sink takes its own locks and may call back; buffer events and flush after unlocking",
					strings.Join(hc.held, ", "))
			case hc.key == "":
				// Dynamic or extra-module call: nothing known about it here;
				// lockdiscipline flags function-value calls where it runs.
			default:
				callee := facts[hc.key]
				if reason := escape[hc.key]; reason != "" {
					// Same-package escapes in serve/obs are lockdiscipline's
					// report; everything cross-package (and everything in
					// sched/gpusim) is ours.
					samePkg := callee != nil && callee.p.Path == lf.p.Path
					if !(samePkg && covered) {
						report(lf.p, hc.pos,
							"call to %s with %s held reaches an escape: it %s; buffer under the lock and flush after unlocking",
							hc.name, strings.Join(hc.held, ", "), reason)
					}
				}
			}
		}
	}
	reportLockCycles(edges, report)
}

// scanLockFacts runs one flow-sensitive pass (the lockdiscipline scanner
// with recording hooks) plus one syntactic pass over a function body.
func scanLockFacts(p *Package, fd *ast.FuncDecl, fn *types.Func) *lockFacts {
	lf := &lockFacts{p: p, name: shortFuncKey(fn), acquires: map[string]bool{}}
	local := p.Types.Name() + "." + lf.name // prefix for function-local mutexes

	keyFor := func(sel *ast.SelectorExpr) string {
		return canonicalLockKey(p, sel, local)
	}
	directCovered := lockorderScope[p.Rel]
	s := &lockScanner{
		p:      p,
		keyFor: keyFor,
		onAcquire: func(key string, pos token.Pos, held map[string]bool) {
			lf.acquires[key] = true
			if len(held) > 0 {
				lf.heldAcquires = append(lf.heldAcquires,
					heldAcquire{pos: pos, key: key, held: sortedKeys(held)})
			}
		},
		onSend: func(pos token.Pos, held map[string]bool, inSelect bool) {
			// Reported here only where lockdiscipline does not run.
			if !directCovered {
				lf.heldCalls = append(lf.heldCalls, heldCall{pos: pos, name: "<send>",
					held: sortedKeys(held)})
			}
		},
		onCall: func(call *ast.CallExpr, held map[string]bool) {
			callee := calleeFunc(p.Info, call)
			hc := heldCall{pos: call.Pos(), held: sortedKeys(held)}
			if callee != nil {
				hc.isEmit = isEmitMethod(callee)
				hc.name = shortFuncKey(callee)
				if callee.Pkg() != nil && sharesModule(callee.Pkg().Path(), p.Path) {
					hc.key = funcKey(callee)
				}
			}
			lf.heldCalls = append(lf.heldCalls, hc)
		},
	}
	s.scanStmts(fd.Body.List, map[string]bool{})

	// Syntactic pass: acquisitions and escapes anywhere in the body feed
	// the summaries even when the flow walk loses track (e.g. locks taken
	// under a branch the walk merged away keep their acquires entry).
	syncInspect(fd.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if lf.escape == "" {
				lf.escape = "sends on a channel"
			}
		case *ast.CallExpr:
			if callee := calleeFunc(p.Info, n); callee != nil {
				if isEmitMethod(callee) && lf.escape == "" {
					lf.escape = "calls " + callee.Name()
				}
				if callee.Pkg() != nil && sharesModule(callee.Pkg().Path(), p.Path) {
					lf.calls = append(lf.calls, callRef{n.Pos(), funcKey(callee), shortFuncKey(callee)})
				}
				if key, locks := lockMethod(p, n); locks {
					lf.acquires[canonicalFromCall(p, n, key, local)] = true
				}
			}
		}
	})
	return lf
}

// lockMethod reports whether call is a sync Lock/RLock and returns the raw
// selector text.
func lockMethod(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return "", false
	}
	return types.ExprString(sel.X), true
}

func canonicalFromCall(p *Package, call *ast.CallExpr, raw, local string) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return canonicalLockKey(p, sel, local)
	}
	return raw
}

// canonicalLockKey names the mutex behind sel ("s.mu.Lock" receives the
// s.mu selector) so every function agrees on one node per lock:
// fields become "pkg.Type.field", package-level mutexes "pkg.name", and
// function-local ones are prefixed with the owning function so unrelated
// locals never alias.
func canonicalLockKey(p *Package, sel *ast.SelectorExpr, local string) string {
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if tv, ok := p.Info.Types[x.X]; ok {
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + x.Name
			}
			return local + ":" + x.Name
		}
	}
	return p.Types.Name() + "." + types.ExprString(sel.X)
}

// reportLockCycles finds strongly connected components of the acquisition
// graph and reports each cyclic one once, at its lexically first edge.
func reportLockCycles(edges []lockEdge, report ModuleReportFunc) {
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	// Self-loops are immediate deadlocks; report them directly.
	selfReported := map[string]bool{}
	for _, e := range edges {
		if e.from == e.to && !selfReported[e.from] {
			selfReported[e.from] = true
			if e.via != "" {
				report(e.p, e.pos, "%s re-acquired via %s while already held: sync mutexes are not reentrant, this deadlocks", e.to, e.via)
			} else {
				report(e.p, e.pos, "%s re-acquired while already held: sync mutexes are not reentrant, this deadlocks", e.to)
			}
		}
	}
	scc := stronglyConnected(adj)
	for _, comp := range scc {
		if len(comp) < 2 {
			continue
		}
		inComp := map[string]bool{}
		for _, k := range comp {
			inComp[k] = true
		}
		// The report anchors at the first edge inside the component.
		var first *lockEdge
		for i := range edges {
			e := &edges[i]
			if e.from != e.to && inComp[e.from] && inComp[e.to] {
				if first == nil || e.p.Fset.Position(e.pos).Filename < first.p.Fset.Position(first.pos).Filename ||
					(e.p.Fset.Position(e.pos).Filename == first.p.Fset.Position(first.pos).Filename && e.pos < first.pos) {
					first = e
				}
			}
		}
		if first == nil {
			continue
		}
		sorted := append([]string(nil), comp...)
		sort.Strings(sorted)
		detail := ""
		if first.via != "" {
			detail = fmt.Sprintf(" (through %s)", first.via)
		}
		report(first.p, first.pos,
			"lock-order cycle among {%s}: %s is acquired%s while %s is held here, and another path acquires them in the opposite order; pick one global order",
			strings.Join(sorted, ", "), first.to, detail, first.from)
	}
}

// stronglyConnected returns Tarjan's strongly connected components of the
// graph, each as a slice of node keys.
func stronglyConnected(adj map[string]map[string]bool) [][]string {
	nodes := make([]string, 0, len(adj))
	seen := map[string]bool{}
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(adj[v]))
		for to := range adj[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return comps
}

// sortedKeys returns the keys of set in sorted order.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
