package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Vocab detects cross-layer vocabulary drift. The sim (internal/policy) and
// the serving path (internal/serve) must keep making identical decisions
// and describing them with identical words; runtime parity tests catch the
// decisions, this rule pins the words:
//
//   - trace event kinds are named constants: a string literal typed as
//     trace.EventKind outside internal/trace is a misspelling waiting to
//     diverge from the canonical kind;
//   - drop reasons shared by both layers live in internal/trace as
//     Reason* constants. Redeclaring one of their values as an independent
//     string constant (or using the bare literal) in policy or serve is
//     drift; each Reason* constant must be referenced from *both* layers,
//     so a reason added for one side is flagged until the other side
//     speaks it too;
//   - metric family names ("split_*") passed to obs.Registry
//     Counter/Gauge/Histogram outside internal/obs must reference the
//     obs.Metric* constants, so dashboards and tests cannot disagree with
//     the server about a family's spelling;
//   - mirrored configuration surfaces stay mirrored: a struct marked
//     `//lint:mirror <import-path>.<Type>` must have the same field names
//     and types as its target, in both directions, except fields marked
//     `//lint:mirror-exempt <reason>` on either side. This is what keeps
//     policy.Split and serve.Config from silently growing one-sided knobs.
var Vocab = &Analyzer{
	Name:      "vocab",
	Doc:       "sim/serve vocabulary drift: event kinds, drop reasons, metric families, and mirrored config structs",
	RunModule: runVocab,
}

const (
	relTrace  = "internal/trace"
	relObs    = "internal/obs"
	relPolicy = "internal/policy"
	relServe  = "internal/serve"
)

func runVocab(pkgs []*Package, report ModuleReportFunc) {
	tracePkg := pkgByRel(pkgs, relTrace)
	obsPkg := pkgByRel(pkgs, relObs)
	checkEventKindLiterals(pkgs, tracePkg, report)
	checkReasonConstants(pkgs, tracePkg, report)
	checkMetricFamilies(pkgs, obsPkg, report)
	checkMirrors(pkgs, report)
}

// pkgByRel returns the (non-external-test) package at the module-relative
// directory, or nil.
func pkgByRel(pkgs []*Package, rel string) *Package {
	for _, p := range pkgs {
		if p.Rel == rel && !isTestPackage(p) {
			return p
		}
	}
	return nil
}

// checkEventKindLiterals flags string literals typed as trace.EventKind
// outside the trace package (non-test files).
func checkEventKindLiterals(pkgs []*Package, tracePkg *Package, report ModuleReportFunc) {
	if tracePkg == nil {
		return
	}
	for _, p := range pkgs {
		if p.Rel == relTrace || isTestPackage(p) {
			continue
		}
		for _, f := range p.Files {
			if isTestFile(p, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				tv, ok := p.Info.Types[lit]
				if !ok {
					return true
				}
				named, ok := tv.Type.(*types.Named)
				if !ok || named.Obj().Name() != "EventKind" ||
					named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != tracePkg.Path {
					return true
				}
				report(p, lit.Pos(),
					"trace event kind %s must be a named trace constant, not a string literal (sim/serve vocabulary drift)",
					lit.Value)
				return true
			})
		}
	}
}

// reasonConsts returns the trace package's exported Reason* string
// constants: value -> name.
func reasonConsts(tracePkg *Package) map[string]string {
	out := map[string]string{}
	scope := tracePkg.Types.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Reason") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		out[constant.StringVal(c.Val())] = name
	}
	return out
}

// checkReasonConstants enforces the shared drop-reason vocabulary: no
// redeclaration of a trace.Reason* value in policy/serve, no bare reason
// literals there, and every Reason* constant referenced from both layers.
func checkReasonConstants(pkgs []*Package, tracePkg *Package, report ModuleReportFunc) {
	if tracePkg == nil {
		return
	}
	reasons := reasonConsts(tracePkg)
	if len(reasons) == 0 {
		return
	}
	policyPkg := pkgByRel(pkgs, relPolicy)
	servePkg := pkgByRel(pkgs, relServe)
	usedBy := map[string]map[string]bool{} // reason name -> rel -> referenced
	for _, p := range []*Package{policyPkg, servePkg} {
		if p == nil {
			continue
		}
		for _, f := range p.Files {
			if isTestFile(p, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					c, ok := p.Info.Uses[n].(*types.Const)
					if ok && c.Pkg() != nil && c.Pkg().Path() == tracePkg.Path &&
						strings.HasPrefix(c.Name(), "Reason") {
						if usedBy[c.Name()] == nil {
							usedBy[c.Name()] = map[string]bool{}
						}
						usedBy[c.Name()][p.Rel] = true
					}
				case *ast.BasicLit:
					if n.Kind != token.STRING {
						return true
					}
					tv, ok := p.Info.Types[n]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						return true
					}
					if name, isReason := reasons[constant.StringVal(tv.Value)]; isReason {
						report(p, n.Pos(),
							"drop reason %s spelled as a literal; reference trace.%s so the sim and serve vocabularies cannot drift",
							n.Value, name)
					}
				}
				return true
			})
		}
	}
	if policyPkg == nil || servePkg == nil {
		return
	}
	// Anchor missing-reference reports at the constant declarations.
	names := make([]string, 0, len(reasons))
	for _, name := range reasons {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, side := range []*Package{policyPkg, servePkg} {
			if usedBy[name][side.Rel] {
				continue
			}
			if pos := constDeclPos(tracePkg, name); pos.IsValid() {
				report(tracePkg, pos,
					"trace.%s is not referenced from %s: shared drop-reason vocabulary must be spoken by both the sim and serve paths",
					name, side.Rel)
			}
		}
	}
}

// constDeclPos finds the declaration position of a package-level constant.
func constDeclPos(p *Package, name string) token.Pos {
	if obj := p.Types.Scope().Lookup(name); obj != nil {
		return obj.Pos()
	}
	return token.NoPos
}

// checkMetricFamilies flags "split_*" string literals passed as the family
// name to obs.Registry constructors outside internal/obs (test files
// included — a test spelling a family by hand is exactly how dashboards
// drift from the server).
func checkMetricFamilies(pkgs []*Package, obsPkg *Package, report ModuleReportFunc) {
	if obsPkg == nil {
		return
	}
	for _, p := range pkgs {
		if p.Rel == relObs {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg.Path {
					return true
				}
				switch fn.Name() {
				case "Counter", "Gauge", "Histogram":
				default:
					return true
				}
				if recvTypeName(fn) != "Registry" {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING ||
					!strings.HasPrefix(strings.Trim(lit.Value, `"`), "split_") {
					return true
				}
				report(p, lit.Pos(),
					"metric family %s spelled as a literal; reference the obs.Metric* constant so every layer agrees on the family name",
					lit.Value)
				return true
			})
		}
	}
}

// mirrorSide is one struct in a mirror relationship.
type mirrorSide struct {
	p      *Package
	name   string
	fields map[string]mirrorField
	order  []string
}

type mirrorField struct {
	pos    token.Pos
	typ    string
	exempt bool
}

// checkMirrors compares every //lint:mirror-marked struct against its
// target, both directions, honoring //lint:mirror-exempt fields.
func checkMirrors(pkgs []*Package, report ModuleReportFunc) {
	for _, p := range pkgs {
		if isTestPackage(p) {
			continue
		}
		for _, f := range p.Files {
			if isTestFile(p, f) {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					arg, dpos, found := directiveArg(doc, "mirror")
					if !found {
						continue
					}
					checkOneMirror(pkgs, p, ts, arg, dpos, report)
				}
			}
		}
	}
}

func checkOneMirror(pkgs []*Package, p *Package, ts *ast.TypeSpec, arg string, dpos token.Pos, report ModuleReportFunc) {
	dot := strings.LastIndex(arg, ".")
	if arg == "" || dot <= 0 || dot == len(arg)-1 {
		report(p, dpos, "malformed directive: want //lint:mirror <import-path>.<Type>")
		return
	}
	targetPath, targetName := arg[:dot], arg[dot+1:]
	var targetPkg *Package
	for _, tp := range pkgs {
		if tp.Path == targetPath && !isTestPackage(tp) {
			targetPkg = tp
			break
		}
	}
	if targetPkg == nil {
		report(p, dpos, "//lint:mirror target package %q is not in this module", targetPath)
		return
	}
	targetTS := findTypeSpec(targetPkg, targetName)
	if targetTS == nil {
		report(p, dpos, "//lint:mirror target %s has no struct type %s", targetPath, targetName)
		return
	}
	src := structSide(p, ts, report)
	dst := structSide(targetPkg, targetTS, report)
	if src == nil || dst == nil {
		if src == nil {
			report(p, ts.Pos(), "//lint:mirror applies to struct types only")
		}
		return
	}
	for _, name := range src.order {
		sf := src.fields[name]
		df, inDst := dst.fields[name]
		switch {
		case !inDst && !sf.exempt:
			report(p, sf.pos,
				"field %s has no mirror in %s.%s; add it there or mark it //lint:mirror-exempt <reason>",
				name, targetPkg.Types.Name(), targetName)
		case inDst && sf.typ != df.typ:
			report(p, sf.pos,
				"field %s is %s here but %s in %s.%s; mirrored knobs must keep identical types",
				name, sf.typ, df.typ, targetPkg.Types.Name(), targetName)
		}
	}
	for _, name := range dst.order {
		df := dst.fields[name]
		if _, inSrc := src.fields[name]; !inSrc && !df.exempt {
			report(targetPkg, df.pos,
				"field %s has no mirror in %s.%s; add it there or mark it //lint:mirror-exempt <reason>",
				name, p.Types.Name(), ts.Name.Name)
		}
	}
}

// findTypeSpec locates the AST TypeSpec of a named type in a package
// (non-test files).
func findTypeSpec(p *Package, name string) *ast.TypeSpec {
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return ts
				}
			}
		}
	}
	return nil
}

// structSide extracts the field set of a struct TypeSpec, with exemptions.
// Malformed exempt directives (no reason) are reported here. Returns nil
// when the spec is not a struct.
func structSide(p *Package, ts *ast.TypeSpec, report ModuleReportFunc) *mirrorSide {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return nil
	}
	side := &mirrorSide{p: p, name: ts.Name.Name, fields: map[string]mirrorField{}}
	qual := func(other *types.Package) string { return other.Name() }
	for _, field := range st.Fields.List {
		reason, dpos, exempt := directiveArg(field.Doc, "mirror-exempt")
		if exempt && reason == "" {
			report(p, dpos, "malformed directive: want //lint:mirror-exempt <reason>")
		}
		var typ string
		if tv, ok := p.Info.Types[field.Type]; ok {
			typ = types.TypeString(tv.Type, qual)
		}
		for _, id := range field.Names {
			side.fields[id.Name] = mirrorField{pos: id.Pos(), typ: typ, exempt: exempt}
			side.order = append(side.order, id.Name)
		}
	}
	return side
}
