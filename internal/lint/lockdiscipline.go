package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockdiscipline guards the concurrent serving path against the deadlock
// class that instrumentation hooks open up: while a sync.Mutex is held in
// internal/serve or internal/obs, no control may escape to code the lock
// owner does not control. Concretely, with a mutex held it flags
//
//   - channel sends (a full or unbuffered channel blocks the lock owner),
//   - calls to any Emit method (trace.Sink callbacks take their own locks
//     and may call back into the server), directly or through a local
//     helper that (transitively) emits or sends, and
//   - calls through function-typed values (caller-supplied closures run
//     arbitrary code under the lock).
//
// The fix is the buffer-and-flush pattern: record work under the lock,
// release it, then emit/send/call.
var Lockdiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no channel send, sink callback, or function-value call while a mutex is held in serve/obs",
	Run:  runLockdiscipline,
}

func runLockdiscipline(p *Package, report ReportFunc) {
	if p.Rel != "internal/serve" && p.Rel != "internal/obs" {
		return
	}
	unsafe := escapingFuncs(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &lockScanner{p: p, report: report, unsafe: unsafe}
			s.scanStmts(fd.Body.List, map[string]bool{})
		}
	}
}

// escapingFuncs computes the package-level functions that send on a
// channel or call an Emit method, directly or transitively through other
// local functions — calling one with a lock held is as bad as inlining it.
// Goroutine launches and function literals are excluded: their bodies do
// not run synchronously under the caller's lock (a stored closure that is
// later *called* under a lock is caught at that call site instead).
func escapingFuncs(p *Package) map[*types.Func]string {
	reason := map[*types.Func]string{}
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			bodies[fn] = fd
			syncInspect(fd.Body, func(n ast.Node) {
				switch n := n.(type) {
				case *ast.SendStmt:
					reason[fn] = "sends on a channel"
				case *ast.CallExpr:
					if callee := calleeFunc(p.Info, n); isEmitMethod(callee) {
						reason[fn] = "calls " + callee.Name()
					}
				}
			})
		}
	}
	// Propagate through local calls to a fixpoint.
	for changed := true; changed; {
		changed = false
		for fn, fd := range bodies {
			if _, done := reason[fn]; done {
				continue
			}
			syncInspect(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				callee := calleeFunc(p.Info, call)
				if callee == nil || callee.Pkg() != p.Types {
					return
				}
				if r, bad := reason[callee]; bad {
					if _, done := reason[fn]; !done {
						reason[fn] = fmt.Sprintf("calls %s, which %s", callee.Name(), r)
						changed = true
					}
				}
			})
		}
	}
	return reason
}

// syncInspect walks root like ast.Inspect but skips the bodies of
// goroutine launches and function literals — code that does not run
// synchronously in the enclosing function.
func syncInspect(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case nil:
			return true
		}
		fn(n)
		return true
	})
}

// isEmitMethod reports whether fn is a method named Emit.
func isEmitMethod(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Emit" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// lockScanner tracks which mutexes are held through a linear walk of a
// function body. It is a small abstract interpreter: branches fork the
// held-set and merge with a union (held on any live path counts), paths
// ending in return/branch statements drop out of the merge.
//
// With the hook fields unset the scanner reports lockdiscipline's
// diagnostics. Lockorder reuses the identical walk by installing hooks:
// keyFor canonicalizes mutex names across functions, onAcquire feeds the
// inter-procedural acquisition graph, and onSend/onCall record facts
// instead of reporting so the module pass can reason transitively.
type lockScanner struct {
	p      *Package
	report ReportFunc
	unsafe map[*types.Func]string
	// keyFor overrides how a mutex expression is named (default:
	// types.ExprString of the receiver expression).
	keyFor func(sel *ast.SelectorExpr) string
	// onAcquire observes a Lock/RLock with the held-set *before* the
	// acquisition.
	onAcquire func(key string, pos token.Pos, held map[string]bool)
	// onSend replaces the default channel-send report.
	onSend func(pos token.Pos, held map[string]bool, inSelect bool)
	// onCall replaces the default escaping-call checks.
	onCall func(call *ast.CallExpr, held map[string]bool)
}

// scanStmts processes a statement list with the given held-set and returns
// the resulting held-set and whether the path terminated (return/branch).
func (s *lockScanner) scanStmts(stmts []ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	for _, stmt := range stmts {
		var terminated bool
		held, terminated = s.scanStmt(stmt, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (s *lockScanner) scanStmt(stmt ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if key, locks, ok := s.lockOp(st.X); ok {
			if locks && s.onAcquire != nil {
				s.onAcquire(key, st.Pos(), held)
			}
			held = copySet(held)
			if locks {
				held[key] = true
			} else {
				delete(held, key)
			}
			return held, false
		}
		s.checkExpr(st.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the body,
		// which is exactly what the current held-set already says; other
		// deferred calls run at return time and are not checked.
		if _, _, ok := s.lockOp(st.Call); ok {
			return held, false
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			if s.onSend != nil {
				s.onSend(st.Pos(), held, false)
			} else {
				s.report(st.Pos(), "channel send with %s held: a blocked receiver deadlocks the lock owner; buffer and send after unlocking", heldNames(held))
			}
		}
		s.checkExpr(st.Chan, held)
		s.checkExpr(st.Value, held)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.checkExpr(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return s.scanStmts(st.List, held)
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = s.scanStmt(st.Init, held)
		}
		s.checkExpr(st.Cond, held)
		thenOut, thenTerm := s.scanStmts(st.Body.List, copySet(held))
		elseOut, elseTerm := copySet(held), false
		if st.Else != nil {
			elseOut, elseTerm = s.scanStmt(st.Else, copySet(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return union(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = s.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			s.checkExpr(st.Cond, held)
		}
		bodyOut, _ := s.scanStmts(st.Body.List, copySet(held))
		if st.Post != nil {
			s.scanStmt(st.Post, bodyOut)
		}
		return union(held, bodyOut), false
	case *ast.RangeStmt:
		s.checkExpr(st.X, held)
		bodyOut, _ := s.scanStmts(st.Body.List, copySet(held))
		return union(held, bodyOut), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return s.scanCases(st, held)
	case *ast.GoStmt:
		// The launched goroutine does not hold the caller's locks; its
		// argument expressions are evaluated now, though.
		for _, a := range st.Call.Args {
			s.checkExpr(a, held)
		}
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt:
		s.checkExpr(stmt, held)
	default:
		s.checkExpr(stmt, held)
	}
	return held, false
}

// scanCases handles switch/select statements: every case forks from the
// same entry state; the merge is the union of non-terminated outcomes.
func (s *lockScanner) scanCases(stmt ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	var body *ast.BlockStmt
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = s.scanStmt(st.Init, held)
		}
		if st.Tag != nil {
			s.checkExpr(st.Tag, held)
		}
		body = st.Body
	case *ast.TypeSwitchStmt:
		body = st.Body
	case *ast.SelectStmt:
		body = st.Body
	}
	out := copySet(held)
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			if send, ok := c.Comm.(*ast.SendStmt); ok && len(held) > 0 {
				if s.onSend != nil {
					s.onSend(send.Pos(), held, true)
				} else {
					s.report(send.Pos(), "select-case channel send with %s held: a blocked receiver deadlocks the lock owner", heldNames(held))
				}
			}
			stmts = c.Body
		}
		caseOut, term := s.scanStmts(stmts, copySet(held))
		if !term {
			out = union(out, caseOut)
		}
	}
	return out, false
}

// checkExpr flags escaping calls in an expression subtree evaluated with
// the given held-set. Function-literal bodies are skipped: they run when
// called, and any synchronous call of one is flagged at that call.
func (s *lockScanner) checkExpr(n ast.Node, held map[string]bool) {
	if len(held) == 0 || n == nil {
		return
	}
	syncInspect(n, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		s.checkCall(call, held)
	})
}

func (s *lockScanner) checkCall(call *ast.CallExpr, held map[string]bool) {
	if s.onCall != nil {
		s.onCall(call, held)
		return
	}
	if fn := calleeFunc(s.p.Info, call); fn != nil {
		if isEmitMethod(fn) {
			s.report(call.Pos(), "sink %s called with %s held: the sink takes its own locks and may call back; buffer events and flush after unlocking", fn.Name(), heldNames(held))
			return
		}
		if r, bad := s.unsafe[fn]; bad && fn.Pkg() == s.p.Types {
			s.report(call.Pos(), "%s called with %s held: it %s; buffer under the lock and flush after unlocking", fn.Name(), heldNames(held), r)
		}
		return
	}
	// Dynamic call: a function-typed variable, parameter, or field.
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	if v, ok := s.p.Info.Uses[id].(*types.Var); ok {
		if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
			s.report(call.Pos(), "function value %s called with %s held: caller-supplied code must not run under the lock", id.Name, heldNames(held))
		}
	}
}

// lockOp recognizes x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() on a
// sync.Mutex or sync.RWMutex and returns the mutex key and whether the
// call acquires it.
func (s *lockScanner) lockOp(e ast.Expr) (key string, locks, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn, isFn := s.p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return "", false, false
	}
	if s.keyFor != nil {
		return s.keyFor(sel), locks, true
	}
	return types.ExprString(sel.X), locks, true
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func copySet(set map[string]bool) map[string]bool {
	out := make(map[string]bool, len(set))
	for k := range set {
		out[k] = true
	}
	return out
}

func union(a, b map[string]bool) map[string]bool {
	out := copySet(a)
	for k := range b {
		out[k] = true
	}
	return out
}
