package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked compilation unit: a package (augmented with
// its in-package test files) or an external _test package.
type Package struct {
	// Path is the import path ("split/internal/sched"). External test
	// packages share the path of the package they test.
	Path string
	// Rel is the module-relative directory ("" for the module root,
	// "internal/sched", "cmd/splitd", ...). Analyzers scope their rules
	// on Rel, so a package loaded standalone can simulate any location.
	Rel string
	// Name is the package name ("sched", "sched_test", "main").
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded and type-checked module.
type Module struct {
	Dir  string
	Path string
	Fset *token.FileSet
	// Packages is every unit in dependency order, in-package test files
	// included, external test packages as separate trailing units.
	Packages []*Package
}

// unit is a pre-type-check compilation unit. In-package test files are kept
// separate from the base files: importers always see the base-only package
// (as the go toolchain arranges), which keeps the module-local import graph
// acyclic even when test files import packages that import this one.
type unit struct {
	dir, rel, path, name string
	xtest                bool
	files                []*ast.File
	testFiles            []*ast.File     // in-package _test.go files
	deps                 map[string]bool // module-local imports of files
	testDeps             map[string]bool // module-local imports of testFiles
}

func (u *unit) id() string {
	if u.xtest {
		return u.path + " [xtest]"
	}
	return u.path
}

// LoadModule parses and type-checks every package below dir, which must
// contain a go.mod. Directories named testdata or vendor and hidden
// directories are skipped, matching go-toolchain conventions.
func LoadModule(dir string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var units []*unit
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		us, err := parseDir(fset, path, dir, modPath)
		if err != nil {
			return err
		}
		units = append(units, us...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	units, err = sortUnits(units)
	if err != nil {
		return nil, err
	}
	imp := newModuleImporter(fset, modPath)
	mod := &Module{Dir: dir, Path: modPath, Fset: fset}
	// Pass 1: base packages only, in dependency order, so every importer
	// resolves module-local paths to the non-test version of its deps.
	basePkg := map[string]*Package{}
	for _, u := range units {
		if u.xtest {
			continue
		}
		p, err := checkUnit(fset, u, u.files, imp)
		if err != nil {
			return nil, err
		}
		imp.local[u.path] = p.Types
		basePkg[u.path] = p
	}
	// Pass 2: units with in-package test files are re-checked with those
	// files added; that augmented view is what analyzers see. Units without
	// test files reuse the pass-1 result. External test packages come last.
	for _, u := range units {
		var p *Package
		switch {
		case u.xtest:
			var err error
			if p, err = checkUnit(fset, u, u.files, imp); err != nil {
				return nil, err
			}
		case len(u.testFiles) > 0:
			var err error
			all := append(append([]*ast.File(nil), u.files...), u.testFiles...)
			if p, err = checkUnit(fset, u, all, imp); err != nil {
				return nil, err
			}
		default:
			p = basePkg[u.path]
		}
		mod.Packages = append(mod.Packages, p)
	}
	return mod, nil
}

// LoadPackage parses and type-checks the single package in dir as if it
// lived at importPath inside module modPath. The package may only import
// the standard library; it is how tests load testdata golden packages.
func LoadPackage(dir, modPath, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	units, err := parseDir(fset, dir, "", "")
	if err != nil {
		return nil, err
	}
	if len(units) != 1 {
		return nil, fmt.Errorf("lint: %s holds %d packages, want 1", dir, len(units))
	}
	u := units[0]
	u.path = importPath
	u.rel = relImportPath(modPath, importPath)
	files := append(append([]*ast.File(nil), u.files...), u.testFiles...)
	p, err := checkUnit(fset, u, files, newModuleImporter(fset, modPath))
	if err != nil {
		return nil, err
	}
	return p, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// relImportPath returns the module-relative form of importPath ("" when it
// is the module root).
func relImportPath(modPath, importPath string) string {
	if importPath == modPath {
		return ""
	}
	return strings.TrimPrefix(importPath, modPath+"/")
}

// parseDir parses the .go files of one directory into at most two units:
// the package itself (with in-package test files) and its external _test
// package. modRoot and modPath are empty for standalone loads.
func parseDir(fset *token.FileSet, dir, modRoot, modPath string) ([]*unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string]*unit{}
	var order []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if ignoredByBuildTag(f) {
			continue
		}
		name := f.Name.Name
		u := byName[name]
		if u == nil {
			u = &unit{
				dir: dir, name: name, xtest: strings.HasSuffix(name, "_test"),
				deps: map[string]bool{}, testDeps: map[string]bool{},
			}
			byName[name] = u
			order = append(order, name)
		}
		inPkgTest := !u.xtest && strings.HasSuffix(e.Name(), "_test.go")
		if inPkgTest {
			u.testFiles = append(u.testFiles, f)
		} else {
			u.files = append(u.files, f)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if modPath != "" && (path == modPath || strings.HasPrefix(path, modPath+"/")) {
				if inPkgTest {
					u.testDeps[path] = true
				} else {
					u.deps[path] = true
				}
			}
		}
	}
	var units []*unit
	for _, name := range order {
		u := byName[name]
		if modRoot != "" {
			rel, err := filepath.Rel(modRoot, dir)
			if err != nil {
				return nil, err
			}
			u.rel = filepath.ToSlash(rel)
			if u.rel == "." {
				u.rel = ""
			}
			u.path = modPath
			if u.rel != "" {
				u.path = modPath + "/" + u.rel
			}
		}
		units = append(units, u)
	}
	return units, nil
}

// ignoredByBuildTag reports whether the file's `//go:build` constraint
// excludes it from the default build the linter models: no -race, no
// custom tags. This keeps `ignore` files out and picks exactly one of a
// `race`/`!race` const pair, so the type-checker never sees a
// redeclaration.
func ignoredByBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return !expr.Eval(func(string) bool { return false })
		}
	}
	return false
}

// sortUnits orders units so every module-local dependency is checked
// before its importers (external test units after their base package).
func sortUnits(units []*unit) ([]*unit, error) {
	base := map[string]*unit{}
	for _, u := range units {
		if !u.xtest {
			base[u.path] = u
		}
	}
	seen := map[*unit]int{} // 0 new, 1 visiting, 2 done
	var out []*unit
	var visit func(u *unit) error
	visit = func(u *unit) error {
		switch seen[u] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", u.path)
		case 2:
			return nil
		}
		seen[u] = 1
		deps := make([]string, 0, len(u.deps))
		for d := range u.deps {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		for _, d := range deps {
			if dep := base[d]; dep != nil && dep != u {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		seen[u] = 2
		out = append(out, u)
		return nil
	}
	// Deterministic root order: base packages by path, then xtests.
	ordered := append([]*unit(nil), units...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].xtest != ordered[j].xtest {
			return !ordered[i].xtest
		}
		return ordered[i].path < ordered[j].path
	})
	for _, u := range ordered {
		if err := visit(u); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// checkUnit type-checks the given file view of one unit.
func checkUnit(fset *token.FileSet, u *unit, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(u.path, fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w (and %d more)", u.id(), errs[0], len(errs)-1)
	}
	return &Package{
		Path:  u.path,
		Rel:   u.rel,
		Name:  u.name,
		Dir:   u.dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// moduleImporter resolves module-local import paths to already-checked
// packages and everything else through the shared standard-library cache.
type moduleImporter struct {
	modPath string
	local   map[string]*types.Package
}

func newModuleImporter(fset *token.FileSet, modPath string) *moduleImporter {
	_ = fset // module positions stay in the caller's fset; see stdImports
	return &moduleImporter{
		modPath: modPath,
		local:   map[string]*types.Package{},
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		if p := m.local[path]; p != nil {
			return p, nil
		}
		return nil, fmt.Errorf("lint: module package %q not loaded before its importer", path)
	}
	return importStd(path)
}

// stdImports is the process-wide cache of type-checked standard-library
// packages, shared by every LoadModule/LoadPackage call. Re-importing the
// stdlib dominated repeated loads (every golden test and every analyzer
// run paid it again); one import per path per process keeps
// `splitlint ./...` and the golden suite well under the 10s budget.
// Stdlib object positions resolve against the cache's private FileSet —
// analyzers only ever report positions inside module files, so those
// positions are never rendered. Guarded by a mutex so parallel tests and
// concurrent loads stay race-free.
var stdImports = struct {
	mu    sync.Mutex
	std   types.Importer // compiled export data (fast path)
	src   types.Importer // pure source fallback
	cache map[string]*types.Package
}{}

func importStd(path string) (*types.Package, error) {
	stdImports.mu.Lock()
	defer stdImports.mu.Unlock()
	if stdImports.cache == nil {
		fset := token.NewFileSet()
		stdImports.std = importer.ForCompiler(fset, "gc", nil)
		stdImports.src = importer.ForCompiler(fset, "source", nil)
		stdImports.cache = map[string]*types.Package{}
	}
	if p := stdImports.cache[path]; p != nil {
		return p, nil
	}
	p, err := stdImports.std.Import(path)
	if err != nil {
		if p, err = stdImports.src.Import(path); err != nil {
			return nil, fmt.Errorf("lint: importing %q: %w", path, err)
		}
	}
	stdImports.cache[path] = p
	return p, nil
}
