package lint

import (
	"go/ast"
	"go/types"
)

// Norandglobal keeps every random draw reproducible. The GA, the workload
// generators, and the property tests are all seeded; one call to a global
// math/rand top-level function (whose state is shared and, since Go 1.20,
// randomly seeded) silently breaks bit-reproducibility of experiment
// results across runs. Constructors that build an explicitly seeded
// generator (rand.New, rand.NewSource, rand.NewZipf) are the sanctioned
// entry points.
var Norandglobal = &Analyzer{
	Name: "norandglobal",
	Doc:  "no global math/rand functions; thread an injected seeded *rand.Rand",
	Run:  runNorandglobal,
}

// randConstructors are the math/rand package-level functions that do not
// touch the global generator.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runNorandglobal(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg := usedPkg(p.Info, id)
			if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true // a type like rand.Rand, not a function
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on *rand.Rand reached some other way
			}
			if !randConstructors[fn.Name()] {
				report(sel.Pos(), "global %s.%s draws from shared, unseeded state and breaks run-to-run reproducibility; use an injected seeded *rand.Rand", pkg.Name(), fn.Name())
			}
			return true
		})
	}
}
