package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Hotalloc keeps the grant path allocation-free. SPLIT's preemption-latency
// bound assumes the scheduler reaches the next grant decision in
// microseconds; an allocator visit (or the GC pause it eventually buys) on
// that path is a QoS bug the compiler happily accepts.
//
// A function is marked hot with a directive in its doc comment:
//
//	//lint:hotpath <why this function is on the grant path>
//
// Inside hot functions the rule flags every construct that heap-allocates:
// &-composite literals, slice and map literals, make, closures that capture
// variables, values boxed into interface arguments (the fmt.* and error
// paths), and append inside a loop. Calls are followed transitively through
// the module: a hot function calling an allocating helper is flagged at the
// call site, with the helper's reason. Helpers that are themselves marked
// hot are not re-flagged at their call sites — their bodies are already
// under enforcement. Allocations inside panic(...) arguments are exempt:
// a panicking grant path has already left the fast path. So is anything
// inside the then-branch of `if tracing { ... }` (an identifier or field
// named exactly "tracing"): that is the sanctioned idiom for keeping event
// formatting off the untraced hot path, and the guard itself is what the
// rule pushes call sites toward.
var Hotalloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "no heap allocation in //lint:hotpath functions, transitively through module calls",
	RunModule: runHotalloc,
}

// allocSite is one direct allocation inside a function body.
type allocSite struct {
	pos token.Pos
	// what is the full diagnostic text for a site inside a hot function.
	what string
	// verb is the compressed form used when the allocation is reported at
	// a hot call site several frames up ("allocates a slice literal").
	verb string
}

// callRef is one static call to a module-local function.
type callRef struct {
	pos  token.Pos
	key  string
	name string // shortFuncKey of the callee, for diagnostics
}

// funcFacts is everything hotalloc knows about one function.
type funcFacts struct {
	p     *Package
	name  string
	hot   bool
	sites []allocSite
	calls []callRef
	// allocVerb is non-empty once the function is known to allocate,
	// directly or transitively.
	allocVerb string
}

func runHotalloc(pkgs []*Package, report ModuleReportFunc) {
	facts := map[string]*funcFacts{}
	var hotKeys []string
	for _, p := range pkgs {
		if isTestPackage(p) {
			continue
		}
		for _, f := range p.Files {
			if isTestFile(p, f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &funcFacts{p: p, name: shortFuncKey(fn)}
				_, _, ff.hot = directiveArg(fd.Doc, "hotpath")
				collectAllocs(p, fd, ff)
				key := funcKey(fn)
				facts[key] = ff
				if ff.hot {
					hotKeys = append(hotKeys, key)
				}
			}
		}
	}

	// Seed each function's allocation verdict from its direct sites, then
	// propagate through module-local calls to a fixpoint, recording the
	// call chain in the verb so the report explains *why* a helper is hot.
	for _, ff := range facts {
		if len(ff.sites) > 0 {
			ff.allocVerb = ff.sites[0].verb
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range facts {
			if ff.allocVerb != "" {
				continue
			}
			for _, c := range ff.calls {
				callee := facts[c.key]
				if callee == nil || callee.allocVerb == "" {
					continue
				}
				ff.allocVerb = fmt.Sprintf("calls %s, which %s", c.name, callee.allocVerb)
				changed = true
				break
			}
		}
	}

	sort.Strings(hotKeys)
	for _, key := range hotKeys {
		ff := facts[key]
		for _, site := range ff.sites {
			report(ff.p, site.pos, "hot path (%s): %s", ff.name, site.what)
		}
		for _, c := range ff.calls {
			callee := facts[c.key]
			if callee == nil || callee.allocVerb == "" || callee.hot {
				continue
			}
			report(ff.p, c.pos, "hot path (%s): call to %s allocates — it %s; make the helper allocation-free or lift it off the grant path",
				ff.name, c.name, callee.allocVerb)
		}
	}
}

// collectAllocs walks one function body recording direct allocation sites
// and module-local calls. Function-literal bodies are not entered: their
// code runs when the closure is called, not when the enclosing function
// does — the closure *value* itself is the allocation charged here.
func collectAllocs(p *Package, fd *ast.FuncDecl, ff *funcFacts) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if insideFuncLit(stack) || insidePanic(p, stack) || insideTracingGuard(n, stack) {
			return
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isComposite := ast.Unparen(n.X).(*ast.CompositeLit); isComposite {
					ff.sites = append(ff.sites, allocSite{n.Pos(),
						"&-composite literal escapes to the heap; hoist it or reuse a scratch object",
						"heap-allocates a composite literal"})
				}
			}
		case *ast.CompositeLit:
			if len(stack) > 0 {
				if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
					return // charged to the &-composite above
				}
			}
			tv, ok := p.Info.Types[n]
			if !ok {
				return
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				ff.sites = append(ff.sites, allocSite{n.Pos(),
					"slice literal allocates; reuse a scratch buffer",
					"allocates a slice literal"})
			case *types.Map:
				ff.sites = append(ff.sites, allocSite{n.Pos(),
					"map literal allocates; reuse a scratch map",
					"allocates a map literal"})
			}
		case *ast.FuncLit:
			if c := captureCount(p, n); c > 0 {
				ff.sites = append(ff.sites, allocSite{n.Pos(),
					fmt.Sprintf("closure captures %d variable(s) and allocates; hoist it to a method or bind it once at setup", c),
					"allocates a capturing closure"})
			}
		case *ast.CallExpr:
			checkCallAllocs(p, n, stack, ff)
		}
	})
}

// checkCallAllocs handles the three call-shaped allocation sources: make,
// per-iteration append growth, and interface boxing of arguments.
func checkCallAllocs(p *Package, call *ast.CallExpr, stack []ast.Node, ff *funcFacts) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				ff.sites = append(ff.sites, allocSite{call.Pos(),
					"make allocates; preallocate outside the hot path",
					"calls make"})
			case "append":
				if insideLoop(stack) {
					ff.sites = append(ff.sites, allocSite{call.Pos(),
						"append inside a loop grows per iteration; preallocate or reuse a scratch buffer",
						"grows a slice with append inside a loop"})
				}
			}
			return
		}
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	// Record module-local static callees for transitive propagation.
	if fn := calleeFunc(p.Info, call); fn != nil && fn.Pkg() != nil &&
		sharesModule(fn.Pkg().Path(), p.Path) {
		ff.calls = append(ff.calls, callRef{call.Pos(), funcKey(fn), shortFuncKey(fn)})
	}
	checkBoxing(p, call, ff)
}

// checkBoxing flags concrete values passed to interface-typed parameters —
// including fmt-style ...any variadics — which the compiler implements as a
// heap allocation for anything that is not already pointer-shaped or a
// compile-time constant.
func checkBoxing(p *Package, call *ast.CallExpr, ff *funcFacts) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a spread slice is passed as-is, nothing boxes
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv, ok := p.Info.Types[arg]
		if !ok || atv.Value != nil || atv.IsNil() {
			continue // compile-time constants are backed by static data
		}
		if pointerShaped(atv.Type) {
			continue
		}
		ff.sites = append(ff.sites, allocSite{arg.Pos(),
			fmt.Sprintf("%s boxes into an interface argument and allocates; avoid variadic formatting here or guard it behind a tracing check", types.ExprString(arg)),
			"boxes arguments into interfaces"})
	}
}

// pointerShaped reports whether values of t fit an interface word without
// allocating: pointers, channels, funcs, maps, unsafe pointers, and
// interface values themselves.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// captureCount counts the variables a function literal captures from its
// enclosing function: non-field, non-package-level variables declared
// outside the literal. A closure with zero captures compiles to a static
// function value and never allocates.
func captureCount(p *Package, lit *ast.FuncLit) int {
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if p.Types.Scope().Lookup(v.Name()) == v {
			return true // package-level variables are not captured
		}
		seen[v] = true
		return true
	})
	return len(seen)
}

// insideFuncLit reports whether any ancestor is a function literal.
func insideFuncLit(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// insidePanic reports whether any ancestor is a call to the panic builtin:
// allocation while constructing a panic message is off the fast path by
// definition.
func insidePanic(p *Package, stack []ast.Node) bool {
	for _, n := range stack {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	return false
}

// insideTracingGuard reports whether n sits in the then-branch of an
// `if tracing { ... }` statement (the condition an identifier or field
// selection named exactly "tracing"). Code there runs only when a sink is
// attached, and a recorded event is allowed to cost an allocation.
func insideTracingGuard(n ast.Node, stack []ast.Node) bool {
	for _, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok || !isTracingCond(ifs.Cond) {
			continue
		}
		if n.Pos() >= ifs.Body.Pos() && n.Pos() < ifs.Body.End() {
			return true
		}
	}
	return false
}

func isTracingCond(cond ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.Ident:
		return c.Name == "tracing"
	case *ast.SelectorExpr:
		return c.Sel.Name == "tracing"
	case *ast.BinaryExpr:
		// `spike > 1 && tracing` still only runs its body when tracing.
		return c.Op == token.LAND && (isTracingCond(c.X) || isTracingCond(c.Y))
	}
	return false
}

// insideLoop reports whether the ancestor stack crosses a for/range
// statement. Function-literal ancestors never appear here — collectAllocs
// filters closure interiors out before calling down.
func insideLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// sharesModule reports whether calleePath lives in the same module as the
// package at pkgPath, judged by the first path segment — both real loads
// ("split/...") and fixture loads share one module prefix.
func sharesModule(calleePath, pkgPath string) bool {
	return firstSegment(calleePath) == firstSegment(pkgPath)
}

func firstSegment(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}

// isTestFile reports whether f is a _test.go file of p.
func isTestFile(p *Package, f *ast.File) bool {
	name := p.Fset.Position(f.Pos()).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// isTestPackage reports whether p is an external _test package.
func isTestPackage(p *Package) bool {
	return len(p.Name) > len("_test") && p.Name[len(p.Name)-len("_test"):] == "_test"
}
