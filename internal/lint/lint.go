// Package lint implements splitlint: a zero-dependency static-analysis
// suite (stdlib go/parser + go/types only) enforcing the invariants the
// compiler cannot see but the SPLIT reproduction's correctness rests on —
// virtual-time purity, millisecond units, deterministic randomness, error
// wrapping, and lock discipline on the concurrent serving path.
//
// A diagnostic can be suppressed with a directive on the offending line or
// the line above it:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// ReportFunc records one violation at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// ModuleReportFunc records one violation at pos inside package p. Module
// analyzers must name the package so ignore directives resolve against the
// right files.
type ModuleReportFunc func(p *Package, pos token.Pos, format string, args ...any)

// Analyzer is one lint rule. Exactly one of Run and RunModule is set:
// per-package rules see one package at a time, module rules see every
// loaded package at once and can follow calls and references across
// package boundaries (hotalloc's transitive allocation propagation,
// lockorder's lock-acquisition graph, vocab's cross-layer drift checks).
type Analyzer struct {
	// Name is the rule name used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the invariant the rule protects.
	Doc string
	// Run inspects one package and reports violations.
	Run func(p *Package, report ReportFunc)
	// RunModule inspects the whole module at once.
	RunModule func(pkgs []*Package, report ModuleReportFunc)
}

// All returns every analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{Noclock, Norandglobal, Msunits, Errwrap, Lockdiscipline,
		Hotalloc, Lockorder, Vocab}
}

// ByName resolves a comma-separated rule list against All.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a := byName[strings.TrimSpace(n)]
		if a == nil {
			return nil, fmt.Errorf("lint: unknown rule %q", strings.TrimSpace(n))
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to every package, drops diagnostics suppressed
// by //lint:ignore directives, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ignoresByPkg := make(map[*Package]ignoreSet, len(pkgs))
	for _, p := range pkgs {
		ignores, malformed := collectIgnores(p)
		ignoresByPkg[p] = ignores
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			report := func(pos token.Pos, format string, args ...any) {
				position := p.Fset.Position(pos)
				if ignores.suppresses(a.Name, position) {
					return
				}
				diags = append(diags, Diagnostic{
					Pos:  position,
					Rule: a.Name,
					Msg:  fmt.Sprintf(format, args...),
				})
			}
			a.Run(p, report)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a := a
		report := func(p *Package, pos token.Pos, format string, args ...any) {
			position := p.Fset.Position(pos)
			if ignoresByPkg[p].suppresses(a.Name, position) {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:  position,
				Rule: a.Name,
				Msg:  fmt.Sprintf(format, args...),
			})
		}
		a.RunModule(pkgs, report)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// ignoreDirective is the parsed form of one //lint:ignore comment.
type ignoreDirective struct {
	rules map[string]bool
}

// ignoreSet maps file -> line -> directive.
type ignoreSet map[string]map[int]ignoreDirective

// suppresses reports whether a diagnostic for rule at position is covered
// by a directive on the same line or the line directly above.
func (s ignoreSet) suppresses(rule string, pos token.Position) bool {
	lines := s[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && d.rules[rule] {
			return true
		}
	}
	return false
}

const ignorePrefix = "lint:ignore"

// collectIgnores parses every //lint:ignore directive in the package and
// reports malformed ones (missing rule or reason) as diagnostics.
func collectIgnores(p *Package) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var malformed []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), ignorePrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:  pos,
						Rule: "ignore",
						Msg:  "malformed directive: want //lint:ignore <rule> <reason>",
					})
					continue
				}
				d := ignoreDirective{rules: map[string]bool{}}
				for _, r := range strings.Split(fields[0], ",") {
					d.rules[r] = true
				}
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int]ignoreDirective{}
				}
				set[pos.Filename][pos.Line] = d
			}
		}
	}
	return set, malformed
}

// --- shared AST/type helpers ---

// usedPkg returns the package an identifier refers to when it names an
// import, or nil.
func usedPkg(info *types.Info, id *ast.Ident) *types.Package {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}

// pkgSelector returns the selected name when sel is a qualified reference
// into the package with the given import path ("" when it is not).
func pkgSelector(info *types.Info, sel *ast.SelectorExpr, pkgPath string) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if p := usedPkg(info, id); p != nil && p.Path() == pkgPath {
		return sel.Sel.Name
	}
	return ""
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// walkStack traverses root calling fn with each node and its ancestor
// stack (outermost first, excluding the node itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// isFloat64 reports whether t's underlying type is float64.
func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// funcKey names a function uniquely across the module as
// "pkgpath.[Recv.]Name". Module analyzers key cross-package maps by this
// string instead of *types.Func identity: packages with in-package test
// files are type-checked twice (see LoadModule), so the same function has
// two distinct objects — one per view — but a single key.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if recv := recvTypeName(fn); recv != "" {
		return fn.Pkg().Path() + "." + recv + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// shortFuncKey is funcKey without the package path, for diagnostics.
func shortFuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if recv := recvTypeName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

// recvTypeName returns the name of fn's receiver type ("" for plain
// functions), with any pointer indirection stripped.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// directiveArg scans a comment group for a //lint:<name> directive and
// returns the rest of its line. found distinguishes a bare directive from
// an absent one.
func directiveArg(cg *ast.CommentGroup, name string) (arg string, pos token.Pos, found bool) {
	if cg == nil {
		return "", token.NoPos, false
	}
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:"+name)
		if !ok {
			continue
		}
		if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
			continue // a longer directive name, e.g. lint:mirror-exempt vs lint:mirror
		}
		return strings.TrimSpace(rest), c.Pos(), true
	}
	return "", token.NoPos, false
}
