package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
)

// Msunits enforces the repo-wide time convention: scheduler and simulator
// times are float64 milliseconds. Two checks keep that invariant visible in
// the type surface:
//
//  1. Exported struct fields and parameters of exported functions whose
//     name says "this is a time" (…Wait, …Latency, …Interval, …) but whose
//     float64 type cannot — they must carry an explicit unit suffix
//     (canonically Ms; S is accepted for wall-clock seconds at API edges
//     like Health.UptimeS).
//  2. time.Duration must not silently mix into ms-float arithmetic:
//     time.Duration(msFloat) reinterprets milliseconds as nanoseconds, and
//     float64(duration) yields nanoseconds — both need an explicit
//     float64(time.Millisecond)-style unit factor in the same expression.
var Msunits = &Analyzer{
	Name: "msunits",
	Doc:  "time-valued float64 names carry a unit suffix; no Duration/ms-float mixing",
	Run:  runMsunits,
}

// unitSuffixes are accepted trailing camel-case words that name a unit.
var unitSuffixes = map[string]bool{
	"ms": true, "ns": true, "us": true, "s": true, "sec": true, "secs": true,
}

// timeWords are trailing camel-case words that mark a name as time-valued.
var timeWords = map[string]bool{
	"time": true, "at": true, "wait": true, "waited": true, "waiting": true,
	"latency": true, "deadline": true, "timeout": true, "delay": true,
	"elapsed": true, "interval": true, "duration": true, "period": true,
	"uptime": true, "age": true,
}

// splitCamel splits a Go identifier into its camel-case words.
func splitCamel(name string) []string {
	runes := []rune(name)
	var words []string
	start := 0
	for i := 1; i < len(runes); i++ {
		prev, cur := runes[i-1], runes[i]
		boundary := unicode.IsUpper(cur) &&
			(!unicode.IsUpper(prev) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1])))
		if boundary {
			words = append(words, string(runes[start:i]))
			start = i
		}
	}
	return append(words, string(runes[start:]))
}

// needsUnitSuffix reports whether a float64-typed name reads as a time but
// does not end in a unit word.
func needsUnitSuffix(name string) bool {
	words := splitCamel(name)
	last := strings.ToLower(words[len(words)-1])
	return !unitSuffixes[last] && timeWords[last]
}

func runMsunits(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		checkNamedTimes(p, f, report)
		checkDurationMixing(p, f, report)
	}
}

// checkNamedTimes applies the naming half of the rule to exported struct
// fields and to the parameters of exported functions and methods.
func checkNamedTimes(p *Package, f *ast.File, report ReportFunc) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				for _, name := range field.Names {
					if !name.IsExported() {
						continue
					}
					obj := p.Info.Defs[name]
					if obj == nil || !isFloat64(obj.Type()) {
						continue
					}
					if needsUnitSuffix(name.Name) {
						report(name.Pos(), "exported time-valued float64 field %s does not name its unit; add the Ms suffix", name.Name)
					}
				}
			}
		case *ast.FuncDecl:
			if !n.Name.IsExported() || n.Type.Params == nil {
				return true
			}
			for _, field := range n.Type.Params.List {
				for _, name := range field.Names {
					obj := p.Info.Defs[name]
					if obj == nil || !isFloat64(obj.Type()) {
						continue
					}
					if needsUnitSuffix(name.Name) {
						report(name.Pos(), "time-valued float64 parameter %s of exported %s does not name its unit; add the Ms suffix", name.Name, n.Name.Name)
					}
				}
			}
		}
		return true
	})
}

// checkDurationMixing applies the conversion half of the rule.
func checkDurationMixing(p *Package, f *ast.File, report ReportFunc) {
	walkStack(f, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return
		}
		arg := call.Args[0]
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			// time.Duration(<float64 expr>) without a unit factor treats
			// a millisecond value as nanoseconds.
			if !isTypeName(p.Info, fun.Sel, "time", "Duration") {
				return
			}
			if t, ok := p.Info.Types[arg]; !ok || !isFloat64(t.Type) {
				return
			}
			if !mentionsTimeUnit(p.Info, arg) {
				report(call.Pos(), "time.Duration(<float64>) reads a millisecond value as nanoseconds; multiply by float64(time.Millisecond) in the conversion")
			}
		case *ast.Ident:
			// float64(<time.Duration expr>) without a unit divisor in the
			// surrounding arithmetic yields nanoseconds.
			if obj, ok := p.Info.Uses[fun].(*types.TypeName); !ok || obj.Name() != "float64" || obj.Pkg() != nil {
				return
			}
			if t, ok := p.Info.Types[arg]; !ok || !isDuration(t.Type) {
				return
			}
			if !mentionsTimeUnit(p.Info, enclosingArithmetic(call, stack)) {
				report(call.Pos(), "float64(<time.Duration>) yields nanoseconds; divide by float64(time.Millisecond) in the same expression")
			}
		}
	})
}

// isTypeName reports whether id resolves to the named type pkg.name.
func isTypeName(info *types.Info, id *ast.Ident, pkgPath, name string) bool {
	tn, ok := info.Uses[id].(*types.TypeName)
	return ok && tn.Name() == name && tn.Pkg() != nil && tn.Pkg().Path() == pkgPath
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// enclosingArithmetic climbs from call to the outermost binary/paren
// expression containing it, so a unit factor anywhere in the same
// arithmetic chain legitimizes the conversion.
func enclosingArithmetic(call ast.Expr, stack []ast.Node) ast.Node {
	var top ast.Node = call
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.BinaryExpr, *ast.ParenExpr:
			top = stack[i]
		default:
			return top
		}
	}
	return top
}

// mentionsTimeUnit reports whether the subtree references one of the time
// package's unit constants (time.Millisecond, time.Second, ...).
func mentionsTimeUnit(info *types.Info, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pkgSelector(info, sel, "time") {
		case "Nanosecond", "Microsecond", "Millisecond", "Second", "Minute", "Hour":
			found = true
		}
		return !found
	})
	return found
}
