package lint

import (
	"go/ast"
	"strings"
)

// Noclock keeps the simulation/scheduling core clock-free. The same
// Algorithm-1 code drives both the discrete-event simulator and the
// real-time serving path precisely because internal/sched, internal/gpusim,
// internal/policy and friends never read the wall clock: all times flow in
// as float64 milliseconds on a caller-supplied (virtual or scaled-real)
// clock. Only the real-time layers — internal/serve, internal/obs — and the
// binaries under cmd/ and examples/ may touch time.Now and relatives.
var Noclock = &Analyzer{
	Name: "noclock",
	Doc:  "no wall-clock reads or sleeps outside the real-time serving packages",
	Run:  runNoclock,
}

// clockFuncs are the time package entry points that read or wait on the
// wall clock. Pure data types (time.Duration, time.Millisecond) stay legal
// everywhere — the unit conversions in allowed packages depend on them.
var clockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// clockAllowed reports whether the module-relative directory is a
// real-time layer that may legitimately observe the wall clock.
func clockAllowed(rel string) bool {
	if rel == "internal/serve" || rel == "internal/obs" {
		return true
	}
	return strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/")
}

func runNoclock(p *Package, report ReportFunc) {
	if clockAllowed(p.Rel) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name := pkgSelector(p.Info, sel, "time"); clockFuncs[name] {
				report(sel.Pos(), "time.%s in a virtual-time package: keep sim/sched code clock-free and take times as float64 ms arguments", name)
			}
			return true
		})
	}
}
