package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Errwrap keeps error chains inspectable. The serving path's typed
// rejections (serve.ErrQueueFull, serve.ErrUnknownModel, serve.ErrStopped)
// only work if wrapping preserves the chain — fmt.Errorf must use %w for
// error operands — and if call sites test with errors.Is rather than ==,
// which breaks the moment a sentinel is wrapped with context.
var Errwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf wraps errors with %w; sentinels are compared with errors.Is",
	Run:  runErrwrap,
}

func runErrwrap(p *Package, report ReportFunc) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(p, n, errType, report)
			case *ast.BinaryExpr:
				checkSentinelCompare(p, n, errType, report)
			}
			return true
		})
	}
}

// checkErrorf flags fmt.Errorf calls that format an error operand with a
// verb other than %w.
func checkErrorf(p *Package, call *ast.CallExpr, errType types.Type, report ReportFunc) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return
	}
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		tv, ok := p.Info.Types[arg]
		if !ok || tv.Type == nil || tv.Type == types.Typ[types.UntypedNil] {
			continue
		}
		if types.AssignableTo(tv.Type, errType) && verbs[i] != 'w' {
			report(arg.Pos(), "error operand formatted with %%%c flattens the chain; use %%w so callers can errors.Is/As/Unwrap", verbs[i])
		}
	}
}

// formatVerbs returns the verb consumed by each successive operand of a
// Printf-style format string. It bails out (ok=false) on explicit argument
// indexes, which this repo does not use.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision; '*' consumes an operand of its own.
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '[' {
				return nil, false // explicit argument index
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '.' || c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				(c >= '1' && c <= '9') {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs, true
}

// checkSentinelCompare flags ==/!= between error values when one side is a
// package-level sentinel variable (ErrFoo, EOF).
func checkSentinelCompare(p *Package, bin *ast.BinaryExpr, errType types.Type, report ReportFunc) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if !isErrorValue(p.Info, bin.X, errType) || !isErrorValue(p.Info, bin.Y, errType) {
		return
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if name, ok := sentinelName(p.Info, side); ok {
			report(bin.Pos(), "sentinel %s compared with %s; use errors.Is so wrapped errors still match", name, bin.Op)
			return
		}
	}
}

// isErrorValue reports whether e has a (typed, non-nil) error type.
func isErrorValue(info *types.Info, e ast.Expr, errType types.Type) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if b, isBasic := tv.Type.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
		return false
	}
	return types.AssignableTo(tv.Type, errType)
}

// sentinelName returns the name of the package-level sentinel error
// variable e refers to, if it is one.
func sentinelName(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	name := v.Name()
	if len(name) >= 3 && name[:3] == "Err" || name == "EOF" {
		return name, true
	}
	return "", false
}
