package obs

// Canonical metric family names. Every layer that registers or scrapes a
// split_* family — the server, benchmarks, dashboards, tests — must spell
// it through these constants; the vocab lint rule flags a raw "split_*"
// literal at any Registry call site outside this package. A misspelled
// family does not fail loudly: it registers a fresh, empty time series and
// the dashboard quietly reads zeros.
const (
	// Scheduler-wide families.
	MetricPreemptions      = "split_preemptions_total"
	MetricBlockRetries     = "split_block_retries_total"
	MetricQueueDepth       = "split_queue_depth"
	MetricElasticSuppress  = "split_elastic_suppressed"
	MetricViolationRate    = "split_rolling_violation_rate"
	MetricJitterMs         = "split_rolling_jitter_ms"
	MetricWaitMs           = "split_wait_ms"
	MetricE2EMs            = "split_e2e_ms"
	MetricResponseRatio    = "split_response_ratio"
	MetricRequestsTotal    = "split_requests_total"
	MetricCompletionsTotal = "split_completions_total"
	MetricDropsTotal       = "split_drops_total"

	// Per-device families, registered on multi-device fleets.
	MetricDeviceQueueDepth = "split_device_queue_depth"
	MetricDeviceBusyMs     = "split_device_busy_ms_total"
	MetricDeviceBlocks     = "split_device_blocks_total"
	MetricDeviceDrops      = "split_device_drops_total"

	// Micro-batching families, registered when batching is enabled.
	MetricBatchedBlocks = "split_batched_blocks_total"
	MetricBatchSize     = "split_batch_size"

	// Elastic-fleet families, registered when the autoscaler is enabled.
	MetricFleetActive     = "split_fleet_active_devices"
	MetricAutoscaleEvents = "split_autoscale_events_total"
	// Admission families, registered when the admission gate is enabled.
	MetricAdmittedTotal = "split_admitted_total"

	// Spatial-sharing families, registered when devices run partitioned
	// (Partitions >= 2). Busy-ms is pro-rated by the granted fraction, so
	// the per-lane sum stays comparable to split_device_busy_ms_total.
	MetricPartitionBusyMs = "split_partition_busy_ms_total"
	MetricPartitionBlocks = "split_partition_blocks_total"
	MetricPartitionWidth  = "split_partition_width"
)
