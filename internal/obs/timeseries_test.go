package obs

import (
	"math"
	"testing"

	"split/internal/policy"
	"split/internal/trace"
)

// served builds a served record with the given timings.
func served(id int, arriveMs, doneMs, extMs float64) policy.Record {
	return policy.Record{ID: id, Model: "m", ArriveMs: arriveMs, DoneMs: doneMs,
		ExtMs: extMs, Outcome: policy.OutcomeServed}
}

// shed builds a shed record decided at doneMs.
func shed(id int, arriveMs, doneMs float64) policy.Record {
	return policy.Record{ID: id, Model: "m", ArriveMs: arriveMs, DoneMs: doneMs,
		ExtMs: 10, Outcome: policy.OutcomeDeadline}
}

// TestTimeSeriesBucketing: arrivals and outcomes land in the window of
// their own timestamp, and the derived rates use the window width.
func TestTimeSeriesBucketing(t *testing.T) {
	ts := NewTimeSeries(4, 100, 10, 1)
	ts.ObserveArrival(10)
	ts.ObserveArrival(150)
	ts.ObserveOutcome(served(0, 10, 90, 40))   // RR=2, meets α=4
	ts.ObserveOutcome(served(1, 150, 250, 10)) // decided in window 2, RR=10 > 4
	ts.ObserveOutcome(shed(2, 0, 260))         // window 2, always violates

	snap := ts.Snapshot()
	if snap.Alpha != 4 || snap.WindowMs != 100 || snap.Devices != 1 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if len(snap.Windows) != 3 {
		t.Fatalf("got %d windows, want 3 (0..300ms)", len(snap.Windows))
	}
	w0, w1, w2 := snap.Windows[0], snap.Windows[1], snap.Windows[2]
	if w0.Arrivals != 1 || w0.Completions != 1 || w0.ViolationRate != 0 {
		t.Errorf("w0 = %+v", w0)
	}
	if w0.ThroughputRPS != 10 { // 1 completion / 0.1 s
		t.Errorf("w0 throughput = %v, want 10", w0.ThroughputRPS)
	}
	if w1.Arrivals != 1 || w1.Completions != 0 || w1.Sheds != 0 {
		t.Errorf("w1 = %+v", w1)
	}
	if w2.Completions != 1 || w2.Sheds != 1 || w2.ViolationRate != 1 {
		t.Errorf("w2 = %+v (sheds always violate, RR=10 violates)", w2)
	}
}

// TestTimeSeriesEviction: when observations outrun the capacity the oldest
// windows are evicted, later out-of-range observations count as dropped,
// and the snapshot covers only the retained tail.
func TestTimeSeriesEviction(t *testing.T) {
	ts := NewTimeSeries(4, 100, 3, 1)
	for i := 0; i < 6; i++ { // windows 0..5, capacity 3 keeps 3..5
		ts.ObserveArrival(float64(i)*100 + 1)
	}
	ts.ObserveArrival(50) // window 0: evicted, dropped
	snap := ts.Snapshot()
	if snap.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", snap.Dropped)
	}
	if len(snap.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(snap.Windows))
	}
	if snap.Windows[0].StartMs != 300 || snap.Windows[2].EndMs != 600 {
		t.Errorf("retained range [%v, %v), want [300, 600)",
			snap.Windows[0].StartMs, snap.Windows[2].EndMs)
	}
	for i, w := range snap.Windows {
		if w.Arrivals != 1 {
			t.Errorf("window %d arrivals = %d, want 1", i, w.Arrivals)
		}
	}
}

// TestTimeSeriesEvictionLargeJump: a jump past the whole retained range
// clears the ring rather than shifting it.
func TestTimeSeriesEvictionLargeJump(t *testing.T) {
	ts := NewTimeSeries(4, 100, 3, 1)
	ts.ObserveArrival(10)
	ts.ObserveArrival(9010) // window 90, far past base+cap
	snap := ts.Snapshot()
	if len(snap.Windows) != 1 {
		t.Fatalf("got %d windows, want 1 (leading empties trimmed)", len(snap.Windows))
	}
	if snap.Windows[0].StartMs != 9000 || snap.Windows[0].Arrivals != 1 {
		t.Errorf("window = %+v, want the 9000ms window", snap.Windows[0])
	}
}

// TestTimeSeriesBusyProRated: one hold crossing a window boundary is split
// between the windows, and per-device fractions stay separate.
func TestTimeSeriesBusyProRated(t *testing.T) {
	ts := NewTimeSeries(4, 100, 10, 2)
	ts.ObserveBusy(0, 50, 250) // 50ms in w0, 100ms in w1, 50ms in w2
	ts.ObserveBusy(1, 0, 100)  // exactly w0
	ts.ObserveBusy(2, 0, 50)   // out-of-range device: ignored
	ts.ObserveBusy(0, 80, 80)  // empty hold: ignored
	snap := ts.Snapshot()
	if len(snap.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(snap.Windows))
	}
	wantDev0 := []float64{0.5, 1.0, 0.5}
	for i, w := range snap.Windows {
		if math.Abs(w.DeviceBusyFrac[0]-wantDev0[i]) > 1e-9 {
			t.Errorf("w%d dev0 busy = %v, want %v", i, w.DeviceBusyFrac[0], wantDev0[i])
		}
	}
	if snap.Windows[0].DeviceBusyFrac[1] != 1.0 || snap.Windows[1].DeviceBusyFrac[1] != 0 {
		t.Errorf("dev1 busy = %v/%v, want 1/0", snap.Windows[0].DeviceBusyFrac[1],
			snap.Windows[1].DeviceBusyFrac[1])
	}
}

// TestTimeSeriesDepthAveraging: depth samples average within the window
// and unsampled windows report -1.
func TestTimeSeriesDepthAveraging(t *testing.T) {
	ts := NewTimeSeries(4, 100, 10, 1)
	ts.ObserveDepth(10, 2)
	ts.ObserveDepth(20, 4)
	ts.ObserveArrival(150) // window 1 exists but has no depth sample
	snap := ts.Snapshot()
	if got := snap.Windows[0].MeanQueueDepth; got != 3 {
		t.Errorf("w0 depth = %v, want 3", got)
	}
	if got := snap.Windows[1].MeanQueueDepth; got != -1 {
		t.Errorf("w1 depth = %v, want -1 (unsampled)", got)
	}
}

// TestTimeSeriesNilSafe: a nil snapshotter absorbs everything.
func TestTimeSeriesNilSafe(t *testing.T) {
	var ts *TimeSeries
	ts.ObserveArrival(1)
	ts.ObserveOutcome(served(0, 0, 1, 1))
	ts.ObserveBusy(0, 0, 1)
	ts.ObserveDepth(0, 1)
	if snap := ts.Snapshot(); len(snap.Windows) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
}

// TestTimeSeriesFromRun folds a small offline run and checks the windows
// agree with hand counts, including batch holds counted once.
func TestTimeSeriesFromRun(t *testing.T) {
	recs := []policy.Record{
		served(0, 0, 80, 40),   // window 0, RR=2
		served(1, 50, 180, 10), // window 1, RR=13 > 4: violation
		shed(2, 60, 190),       // window 1
	}
	events := []trace.Event{
		{AtMs: 0, Kind: trace.Arrive, ReqID: 0},
		{AtMs: 20, Kind: trace.StartBlock, ReqID: 0, Device: 0},
		{AtMs: 50, Kind: trace.Arrive, ReqID: 1},
		{AtMs: 60, Kind: trace.Arrive, ReqID: 2},
		{AtMs: 80, Kind: trace.EndBlock, ReqID: 0, Device: 0},
		{AtMs: 80, Kind: trace.Complete, ReqID: 0},
		// Batched hold on device 1: two members, one 60ms occupancy.
		{AtMs: 120, Kind: trace.StartBlock, ReqID: 1, Device: 1, Batch: 5},
		{AtMs: 120, Kind: trace.StartBlock, ReqID: 3, Device: 1, Batch: 5},
		{AtMs: 180, Kind: trace.EndBlock, ReqID: 1, Device: 1, Batch: 5},
		{AtMs: 180, Kind: trace.EndBlock, ReqID: 3, Device: 1, Batch: 5},
		{AtMs: 180, Kind: trace.Complete, ReqID: 1},
		{AtMs: 190, Kind: trace.Shed, ReqID: 2},
	}
	snap := TimeSeriesFromRun(recs, events, 4, 100, 2)
	if len(snap.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(snap.Windows))
	}
	w0, w1 := snap.Windows[0], snap.Windows[1]
	if w0.Arrivals != 3 || w0.Completions != 1 || w0.ViolationRate != 0 {
		t.Errorf("w0 = %+v", w0)
	}
	// Depth samples: 1 at t=0, 2 at t=50, 3 at t=60 → mean 2.
	if w0.MeanQueueDepth != 2 {
		t.Errorf("w0 depth = %v, want 2", w0.MeanQueueDepth)
	}
	if math.Abs(w0.DeviceBusyFrac[0]-0.6) > 1e-9 { // 20..80 on dev 0
		t.Errorf("w0 dev0 busy = %v, want 0.6", w0.DeviceBusyFrac[0])
	}
	if w1.Completions != 1 || w1.Sheds != 1 || w1.ViolationRate != 1 {
		t.Errorf("w1 = %+v", w1)
	}
	// The batch hold counts once: 120..180 on dev 1 → 0.6, not 1.2.
	if math.Abs(w1.DeviceBusyFrac[1]-0.6) > 1e-9 {
		t.Errorf("w1 dev1 busy = %v, want 0.6 (batch counted once)", w1.DeviceBusyFrac[1])
	}
}

// TestTimeSeriesDefaults: non-positive constructor arguments fall back to
// the documented defaults.
func TestTimeSeriesDefaults(t *testing.T) {
	ts := NewTimeSeries(0, 0, 0, 0)
	if ts.alpha != 4 || ts.windowMs != DefaultTimeSeriesWindowMs ||
		len(ts.windows) != DefaultTimeSeriesCapacity || ts.devices != 1 {
		t.Fatalf("defaults: alpha=%v window=%v cap=%d dev=%d",
			ts.alpha, ts.windowMs, len(ts.windows), ts.devices)
	}
}

// TestTimeSeriesBusyFracProRated: a fractional (partition) hold
// contributes frac·duration, so two concurrent half-width lanes sum to the
// same fraction one serial hold would.
func TestTimeSeriesBusyFracProRated(t *testing.T) {
	ts := NewTimeSeries(4, 100, 10, 1)
	ts.ObserveBusyFrac(0, 0, 100, 0.5)
	ts.ObserveBusyFrac(0, 50, 100, 0.5)
	snap := ts.Snapshot()
	if got := snap.Windows[0].DeviceBusyFrac[0]; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("two half-width holds = %v, want 0.75", got)
	}
}

// TestTimeSeriesActiveDenominator pins the attach-boundary fix: a device
// attached for the last tenth of a window and busy throughout is fully
// utilized, not 10% — the full-window denominator diluted exactly the
// devices the autoscaler just added.
func TestTimeSeriesActiveDenominator(t *testing.T) {
	ts := NewTimeSeries(4, 100, 10, 2)
	// Device 0 attached the whole run; device 1 attaches at 90.
	ts.ObserveActive(0, 0, 200)
	ts.ObserveActive(1, 90, 200)
	ts.ObserveBusy(0, 0, 50)
	ts.ObserveBusy(1, 90, 150)
	snap := ts.Snapshot()
	if got := snap.Windows[0].DeviceBusyFrac[0]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("dev0 w0 = %v, want 0.5 (full-window denominator)", got)
	}
	// Device 1: busy 10 of its 10 attached ms in w0, 50 of 100 in w1.
	if got := snap.Windows[0].DeviceBusyFrac[1]; math.Abs(got-1) > 1e-9 {
		t.Errorf("dev1 w0 = %v, want 1.0 across the attach boundary", got)
	}
	if got := snap.Windows[1].DeviceBusyFrac[1]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("dev1 w1 = %v, want 0.5", got)
	}
}

// TestTimeSeriesFromRunInfersMembership: ScaleOut/ScaleIn control events
// in the trace switch the busy-fraction denominator to attached time.
func TestTimeSeriesFromRunInfersMembership(t *testing.T) {
	events := []trace.Event{
		// Device 1 joins at 150 and is immediately saturated until 200.
		{AtMs: 150, Kind: trace.ScaleOut, ReqID: -1, Device: 1},
		{AtMs: 150, Kind: trace.StartBlock, ReqID: 7, Device: 1},
		{AtMs: 200, Kind: trace.EndBlock, ReqID: 7, Device: 1},
		{AtMs: 200, Kind: trace.Complete, ReqID: 7},
	}
	recs := []policy.Record{served(7, 140, 200, 50)}
	snap := TimeSeriesFromRun(recs, events, 4, 100, 2)
	if len(snap.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(snap.Windows))
	}
	// The first retained window is 100..200 (window 0 is empty and
	// trimmed): attached 150..200, busy 150..200 → 1.0. The pre-fix
	// full-window denominator read 0.5.
	if got := snap.Windows[0].DeviceBusyFrac[1]; math.Abs(got-1) > 1e-9 {
		t.Errorf("scaled-out device busy frac = %v, want 1.0", got)
	}
	// Device 0 never scaled: attached throughout, idle → 0.
	if got := snap.Windows[0].DeviceBusyFrac[0]; got != 0 {
		t.Errorf("idle device busy frac = %v, want 0", got)
	}

	// A device whose first event is ScaleIn was attached from 0.
	events = []trace.Event{
		{AtMs: 20, Kind: trace.StartBlock, ReqID: 1, Device: 0},
		{AtMs: 60, Kind: trace.EndBlock, ReqID: 1, Device: 0},
		{AtMs: 60, Kind: trace.Complete, ReqID: 1},
		{AtMs: 80, Kind: trace.ScaleIn, ReqID: -1, Device: 0},
	}
	snap = TimeSeriesFromRun([]policy.Record{served(1, 0, 60, 30)}, events, 4, 100, 1)
	// Attached 0..80, busy 20..60 → 0.5.
	if got := snap.Windows[0].DeviceBusyFrac[0]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("scaled-in device busy frac = %v, want 40/80", got)
	}
}
