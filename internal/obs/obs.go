// Package obs is the live observability layer: allocation-light,
// concurrency-safe metric primitives (Counter, Gauge, fixed-bucket
// Histogram), a Registry with hand-rolled Prometheus text-format
// exposition, and a rolling-window online QoS estimator that reuses the
// internal/metrics formulas so live numbers agree with offline ones.
//
// The package is dependency-free by design (stdlib only, matching the
// zero-dep go.mod): the exposition format follows the Prometheus
// text-format 0.0.4 conventions closely enough for scraping and for
// `promtool`-style tooling, without importing a client library.
//
// Hot-path discipline: Counter/Gauge are single atomics, Histogram.Observe
// is a bounded linear scan over its bucket bounds plus three atomics, and
// none of them allocate. Registry lookups (which build label keys) are for
// setup time — callers on hot paths cache the returned handles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down (queue depth, mode
// flags, rolling rates). It stores the float's bits in a uint64 atomic.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value (convenience for depth-style gauges).
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Add increments the gauge by d using a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram in the Prometheus style: bounds are
// upper limits, counts are exported cumulatively with a trailing +Inf
// bucket, plus _sum and _count series. Observe is lock-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; implicit +Inf after the last
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// DefaultLatencyBuckets covers the repo's millisecond latency range, from
// sub-block times to deep-queue waits.
func DefaultLatencyBuckets() []float64 {
	return []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
}

// DefaultRatioBuckets covers response ratios across the paper's α sweep
// (2..20) with headroom for violations.
func DefaultRatioBuckets() []float64 {
	return []float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16, 20, 32, 64}
}

// newHistogram builds a histogram over sorted, strictly increasing bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1), // +1 for +Inf
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricKind tags a registry family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one metric name with its help text and labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]any // label key -> *Counter | *Gauge | *Histogram
}

// Registry holds metric families and renders them in Prometheus text
// format. Creation methods are idempotent: asking for the same
// name+labels returns the existing primitive, so handles can be rebuilt
// cheaply. A nil *Registry is a valid no-op for WritePrometheus.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders alternating k,v pairs as a sorted, canonical
// `{k="v",...}` suffix ("" when unlabeled). Panics on odd-length labels —
// that is a programming error, like a malformed format string.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the series for name+labels, enforcing kind
// consistency per family. candidate is the eagerly-built series value used
// when the key is new — building it outside the registration path is cheap
// (registration is not the hot path) and keeps arbitrary construction code
// from running under r.mu.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, candidate any) any {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]any{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	m := f.series[key]
	if m == nil {
		m = candidate
		f.series[key] = m
	}
	return m
}

// Counter returns the counter for name+labels, creating it on first use.
// Labels are alternating key, value strings.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, kindCounter, labels, &Counter{}).(*Counter)
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, kindGauge, labels, &Gauge{}).(*Gauge)
}

// Histogram returns the histogram for name+labels, creating it on first
// use with the given bucket upper bounds.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return r.lookup(name, help, kindHistogram, labels, newHistogram(buckets)).(*Histogram)
}

// formatValue renders a float without exponent noise for round numbers.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels splices an extra k="v" pair into a rendered label key.
func mergeLabels(key, extra string) string {
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// WritePrometheus renders every family in Prometheus text format 0.0.4,
// deterministically ordered by family name then label key. Nil-safe.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot series pointers under the lock; values are read atomically
	// afterwards so a slow writer never blocks the serving path.
	type row struct {
		key string
		m   any
	}
	fams := make([]struct {
		f    *family
		rows []row
	}, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		rows := make([]row, 0, len(f.series))
		for k, m := range f.series {
			rows = append(rows, row{k, m})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
		fams = append(fams, struct {
			f    *family
			rows []row
		}{f, rows})
	}
	r.mu.Unlock()

	for _, fam := range fams {
		f := fam.f
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, rw := range fam.rows {
			var err error
			switch m := rw.m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, rw.key, m.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, rw.key, formatValue(m.Value()))
			case *Histogram:
				err = m.write(w, f.name, rw.key)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// write renders one histogram series: cumulative _bucket lines, _sum and
// _count.
func (h *Histogram) write(w io.Writer, name, key string) error {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := mergeLabels(key, `le="`+formatValue(bound)+`"`)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(key, `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, key, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, key, h.Count())
	return err
}
