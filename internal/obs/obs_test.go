package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v, want 4", g.Value())
	}
	g.SetInt(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 2, 7, 10, 99} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+2+7+10+99; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Per-bucket (non-cumulative): le=1 → {0.5, 1}; le=5 → {2}; le=10 → {7, 10}; +Inf → {99}.
	for i, want := range []int64{2, 1, 2, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DefaultLatencyBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g*1000+i) / 100)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	var inBuckets int64
	for i := range h.counts {
		inBuckets += h.counts[i].Load()
	}
	if inBuckets != 8000 {
		t.Fatalf("bucket total = %d, want 8000", inBuckets)
	}
}

func TestRegistryIdempotentAndConcurrent(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total", "h", "model", "vgg19")
	c2 := reg.Counter("x_total", "h", "model", "vgg19")
	if c1 != c2 {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c3 := reg.Counter("x_total", "h", "model", "yolov2"); c3 == c1 {
		t.Fatal("distinct labels shared a counter")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Counter("x_total", "h", "model", "vgg19").Inc()
			}
		}()
	}
	wg.Wait()
	if c1.Value() != 1600 {
		t.Fatalf("counter = %d, want 1600", c1.Value())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("y_total", "h")
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	reg.Gauge("y_total", "h")
}

func TestLabelKeyCanonical(t *testing.T) {
	a := labelKey([]string{"model", "vgg19", "class", "long"})
	b := labelKey([]string{"class", "long", "model", "vgg19"})
	if a != b || a != `{class="long",model="vgg19"}` {
		t.Fatalf("label keys %q / %q", a, b)
	}
	if labelKey(nil) != "" {
		t.Error("empty labels should render empty")
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("split_requests_total", "requests accepted", "model", "vgg19").Add(3)
	reg.Counter("split_requests_total", "requests accepted", "model", "yolov2").Inc()
	reg.Gauge("split_queue_depth", "waiting requests").SetInt(2)
	h := reg.Histogram("split_wait_ms", "waiting latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE split_queue_depth gauge",
		"split_queue_depth 2",
		"# TYPE split_requests_total counter",
		`split_requests_total{model="vgg19"} 3`,
		`split_requests_total{model="yolov2"} 1`,
		"# TYPE split_wait_ms histogram",
		`split_wait_ms_bucket{le="1"} 1`,
		`split_wait_ms_bucket{le="10"} 2`,
		`split_wait_ms_bucket{le="+Inf"} 3`,
		"split_wait_ms_sum 105.5",
		"split_wait_ms_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic family order: gauge name sorts before counter name here.
	if strings.Index(out, "split_queue_depth") > strings.Index(out, "split_requests_total") {
		t.Error("families not sorted by name")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var reg *Registry
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, b.String())
	}
}

func TestHistogramLabeledExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("split_e2e_ms", "e2e", []float64{10}, "model", "vgg19").Observe(3)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`split_e2e_ms_bucket{model="vgg19",le="10"} 1`,
		`split_e2e_ms_bucket{model="vgg19",le="+Inf"} 1`,
		`split_e2e_ms_sum{model="vgg19"} 3`,
		`split_e2e_ms_count{model="vgg19"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
