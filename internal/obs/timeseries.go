package obs

import (
	"sync"

	"split/internal/policy"
	"split/internal/trace"
)

// TimeSeries is the rolling windowed counterpart of RollingQoS: instead of
// one digest over the last N completions, it buckets the run into
// fixed-width virtual-time windows and keeps the most recent ones, so
// diurnal and bursty workloads show up as a *trajectory* — throughput,
// viol@α, queue depth and per-device busy fraction per window — rather
// than a single point. It is fed live by serve.Server and offline from a
// (records, events) pair, so /timeseriesz and splittrace dumps agree on
// the same formulas.
//
// All methods are concurrency-safe and nil-safe (no-ops / zero snapshots),
// matching the package's sink conventions.
type TimeSeries struct {
	mu       sync.Mutex
	alpha    float64
	windowMs float64
	devices  int
	// windows is a dense ring of consecutive windows; base is the window
	// index (atMs / windowMs) of slot 0's window, head the highest index
	// observed so far.
	windows []windowAgg
	base    int
	started bool
	head    int
	// dropped counts observations older than the retained range.
	dropped int
}

// windowAgg accumulates one window.
type windowAgg struct {
	arrivals    int
	completions int
	sheds       int
	violations  int // completions with RR > α, plus all sheds
	busyMs      []float64
	// activeMs tracks how long each device was attached within the window;
	// nil when the feed carries no membership information, in which case
	// the whole window is the busy-fraction denominator (the fixed-fleet
	// case). Allocated on the first ObserveActive, exactly like busyMs.
	activeMs []float64
	depthSum float64
	depthN   int
}

// WindowStat is one window of the /timeseriesz payload.
type WindowStat struct {
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
	// Arrivals, Completions and Sheds count lifecycle edges inside the
	// window (a request arriving in one window may complete in another).
	Arrivals    int `json:"arrivals"`
	Completions int `json:"completions"`
	Sheds       int `json:"sheds"`
	// ViolationRate is (completions with RR > α + sheds) over decided
	// requests in the window — the windowed Figure 6 formula.
	ViolationRate float64 `json:"violation_rate"`
	// ThroughputRPS is completions per second of virtual time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanQueueDepth averages the depth samples taken in the window; -1
	// when the window saw no samples.
	MeanQueueDepth float64 `json:"mean_queue_depth"`
	// DeviceBusyFrac is each device's busy fraction of the time it was
	// attached within the window (the whole window when the feed carries no
	// membership spans). A device attached for the last 100 ms of a 1000 ms
	// window and busy throughout reads 1.0, not 0.1 — dividing by the full
	// window diluted exactly the devices the autoscaler just added.
	DeviceBusyFrac []float64 `json:"device_busy_frac"`
}

// TimeSeriesSnapshot is the full /timeseriesz payload.
type TimeSeriesSnapshot struct {
	Alpha    float64      `json:"alpha"`
	WindowMs float64      `json:"window_ms"`
	Devices  int          `json:"devices"`
	Dropped  int          `json:"dropped,omitempty"`
	Windows  []WindowStat `json:"windows"`
}

// DefaultTimeSeriesWindowMs is the window width used when callers pass <= 0.
const DefaultTimeSeriesWindowMs = 1000

// DefaultTimeSeriesCapacity is the number of retained windows when callers
// pass <= 0.
const DefaultTimeSeriesCapacity = 120

// NewTimeSeries returns a snapshotter over `capacity` windows of
// `windowMs` virtual milliseconds for a fleet of `devices` (minimum 1).
func NewTimeSeries(alpha, windowMs float64, capacity, devices int) *TimeSeries {
	if alpha <= 0 {
		alpha = 4
	}
	if windowMs <= 0 {
		windowMs = DefaultTimeSeriesWindowMs
	}
	if capacity <= 0 {
		capacity = DefaultTimeSeriesCapacity
	}
	if devices < 1 {
		devices = 1
	}
	return &TimeSeries{alpha: alpha, windowMs: windowMs, devices: devices,
		windows: make([]windowAgg, capacity)}
}

// slot returns the aggregation bucket for atMs, advancing/evicting the ring
// as needed, or nil when atMs predates the retained range. Caller holds mu.
func (ts *TimeSeries) slot(atMs float64) *windowAgg {
	if atMs < 0 {
		atMs = 0
	}
	idx := int(atMs / ts.windowMs)
	if !ts.started {
		ts.started = true
		ts.base = 0
		if idx >= len(ts.windows) {
			ts.base = idx - len(ts.windows) + 1
		}
		ts.head = idx
	}
	if idx > ts.head {
		ts.head = idx
	}
	if idx < ts.base {
		ts.dropped++
		return nil
	}
	if idx >= ts.base+len(ts.windows) {
		// Evict the oldest windows to fit idx: shift the dense ring.
		shift := idx - (ts.base + len(ts.windows)) + 1
		if shift >= len(ts.windows) {
			for i := range ts.windows {
				ts.windows[i] = windowAgg{}
			}
			ts.base = idx - len(ts.windows) + 1
		} else {
			copy(ts.windows, ts.windows[shift:])
			for i := len(ts.windows) - shift; i < len(ts.windows); i++ {
				ts.windows[i] = windowAgg{}
			}
			ts.base += shift
		}
	}
	return &ts.windows[idx-ts.base]
}

// ObserveArrival records a request entering the system at atMs.
func (ts *TimeSeries) ObserveArrival(atMs float64) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	if w := ts.slot(atMs); w != nil {
		w.arrivals++
	}
	ts.mu.Unlock()
}

// ObserveOutcome records a decided request — served or shed — bucketed by
// its decision time (DoneMs), using the same served/violation semantics as
// the offline harness: sheds always violate, completions violate when
// RR > α.
func (ts *TimeSeries) ObserveOutcome(rec policy.Record) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	if w := ts.slot(rec.DoneMs); w != nil {
		if rec.Served() {
			w.completions++
			if rec.ResponseRatio() > ts.alpha {
				w.violations++
			}
		} else {
			w.sheds++
			w.violations++
		}
	}
	ts.mu.Unlock()
}

// ObserveBusy attributes one device hold [startMs, endMs] to the windows
// it crosses, pro-rated.
func (ts *TimeSeries) ObserveBusy(device int, startMs, endMs float64) {
	ts.ObserveBusyFrac(device, startMs, endMs, 1)
}

// ObserveBusyFrac attributes one fractional device hold — a partition
// grant occupying frac of the device — to the windows it crosses. A hold
// of frac f for t ms contributes f·t busy-ms, so concurrent partition
// lanes can never push a device's windowed busy fraction past 1.
func (ts *TimeSeries) ObserveBusyFrac(device int, startMs, endMs, frac float64) {
	if ts == nil || endMs <= startMs || device < 0 || device >= ts.devices || frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	ts.mu.Lock()
	for cur := startMs; cur < endMs; {
		winEnd := (float64(int(cur/ts.windowMs)) + 1) * ts.windowMs
		if winEnd > endMs {
			winEnd = endMs
		}
		if w := ts.slot(cur); w != nil {
			if w.busyMs == nil {
				w.busyMs = make([]float64, ts.devices)
			}
			w.busyMs[device] += frac * (winEnd - cur)
		}
		cur = winEnd
	}
	ts.mu.Unlock()
}

// ObserveActive attributes one attach span [startMs, endMs] of a device to
// the windows it crosses, pro-rated. Feeding attach spans switches the
// busy-fraction denominator from the full window to the device's attached
// time within it, which is what makes the fraction honest across the
// attach boundary: without it, a device attached mid-window divides its
// busy time by the whole window and reads mostly idle the moment it joins.
func (ts *TimeSeries) ObserveActive(device int, startMs, endMs float64) {
	if ts == nil || endMs <= startMs || device < 0 || device >= ts.devices {
		return
	}
	ts.mu.Lock()
	for cur := startMs; cur < endMs; {
		winEnd := (float64(int(cur/ts.windowMs)) + 1) * ts.windowMs
		if winEnd > endMs {
			winEnd = endMs
		}
		if w := ts.slot(cur); w != nil {
			if w.activeMs == nil {
				w.activeMs = make([]float64, ts.devices)
			}
			w.activeMs[device] += winEnd - cur
		}
		cur = winEnd
	}
	ts.mu.Unlock()
}

// ObserveDepth records a queue-depth sample at atMs.
func (ts *TimeSeries) ObserveDepth(atMs float64, depth int) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	if w := ts.slot(atMs); w != nil {
		w.depthSum += float64(depth)
		w.depthN++
	}
	ts.mu.Unlock()
}

// Snapshot renders the retained windows oldest-first, ending at the latest
// window observed. Leading never-observed windows are trimmed; interior
// empty windows are kept (an idle second is data). Nil-safe.
func (ts *TimeSeries) Snapshot() TimeSeriesSnapshot {
	if ts == nil {
		return TimeSeriesSnapshot{}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	snap := TimeSeriesSnapshot{Alpha: ts.alpha, WindowMs: ts.windowMs,
		Devices: ts.devices, Dropped: ts.dropped}
	if !ts.started {
		return snap
	}
	last := ts.head
	if last >= ts.base+len(ts.windows) {
		last = ts.base + len(ts.windows) - 1
	}
	for idx := ts.base; idx <= last; idx++ {
		w := ts.windows[idx-ts.base]
		ws := WindowStat{
			StartMs:        float64(idx) * ts.windowMs,
			EndMs:          float64(idx+1) * ts.windowMs,
			Arrivals:       w.arrivals,
			Completions:    w.completions,
			Sheds:          w.sheds,
			ThroughputRPS:  float64(w.completions) / (ts.windowMs / 1000),
			MeanQueueDepth: -1,
			DeviceBusyFrac: make([]float64, ts.devices),
		}
		if decided := w.completions + w.sheds; decided > 0 {
			ws.ViolationRate = float64(w.violations) / float64(decided)
		}
		if w.depthN > 0 {
			ws.MeanQueueDepth = w.depthSum / float64(w.depthN)
		}
		for d := range ws.DeviceBusyFrac {
			if w.busyMs == nil {
				continue
			}
			denom := ts.windowMs
			if w.activeMs != nil {
				// Membership-aware denominator: busy over attached time. A
				// device with no attached time in the window reads 0 — it
				// cannot have been busy (Attach refuses busy devices).
				denom = w.activeMs[d]
				if denom <= 0 {
					continue
				}
			}
			frac := w.busyMs[d] / denom
			if frac > 1 {
				frac = 1
			}
			ws.DeviceBusyFrac[d] = frac
		}
		snap.Windows = append(snap.Windows, ws)
	}
	// Trim leading windows before the first observation.
	for len(snap.Windows) > 0 && emptyWindow(snap.Windows[0]) {
		snap.Windows = snap.Windows[1:]
	}
	return snap
}

// emptyWindow reports whether a window saw no observations at all.
func emptyWindow(w WindowStat) bool {
	if w.Arrivals != 0 || w.Completions != 0 || w.Sheds != 0 || w.MeanQueueDepth >= 0 {
		return false
	}
	for _, f := range w.DeviceBusyFrac {
		if f != 0 {
			return false
		}
	}
	return true
}

// TimeSeriesFromRun folds an offline run — the per-request records plus
// the event trace — into the same windowed series the live server
// produces, so `policy.Split` runs are inspectable with the exact
// /timeseriesz semantics. Busy time comes from StartBlock/EndBlock pairs;
// depth is sampled at every arrival from the arrive/settle balance.
func TimeSeriesFromRun(recs []policy.Record, events []trace.Event, alpha, windowMs float64, devices int) TimeSeriesSnapshot {
	if devices < 1 {
		devices = 1
	}
	horizon := 0.0
	for _, r := range recs {
		if r.DoneMs > horizon {
			horizon = r.DoneMs
		}
	}
	for _, e := range events {
		if e.AtMs > horizon {
			horizon = e.AtMs
		}
	}
	if windowMs <= 0 {
		windowMs = DefaultTimeSeriesWindowMs
	}
	capacity := int(horizon/windowMs) + 1
	ts := NewTimeSeries(alpha, windowMs, capacity, devices)
	for _, r := range recs {
		ts.ObserveArrival(r.ArriveMs)
		ts.ObserveOutcome(r)
	}
	// Membership spans: fold ScaleOut/ScaleIn control events into per-device
	// attach spans so busy fractions across the attach boundary divide by
	// attached time, matching the live server's feed. Traces without scale
	// events carry no membership information and keep the full-window
	// denominator. (ScaleIn marks the start of drain-then-release; using it
	// as the span end slightly undercounts the drain tail, which only makes
	// the reported fraction conservative.)
	sawScale := false
	for _, e := range events {
		if e.Kind == trace.ScaleOut || e.Kind == trace.ScaleIn {
			sawScale = true
			break
		}
	}
	if sawScale {
		attachedFrom := map[int]float64{}
		touched := map[int]bool{}
		for _, e := range events {
			switch e.Kind {
			case trace.ScaleOut:
				touched[e.Device] = true
				attachedFrom[e.Device] = e.AtMs
			case trace.ScaleIn:
				start, wasOpen := attachedFrom[e.Device]
				if !wasOpen {
					if touched[e.Device] {
						break // duplicate scale-in; no open span to close
					}
					// First sight is a scale-in: attached since time 0.
					start = 0
				}
				touched[e.Device] = true
				ts.ObserveActive(e.Device, start, e.AtMs)
				delete(attachedFrom, e.Device)
			}
		}
		for d, start := range attachedFrom {
			ts.ObserveActive(d, start, horizon)
		}
		for d := 0; d < devices; d++ {
			if !touched[d] {
				ts.ObserveActive(d, 0, horizon)
			}
		}
	}

	type open struct {
		at  float64
		dev int
	}
	opens := map[int]open{}
	// A micro-batch shares one device hold across its members; count the
	// occupancy once per batch id, not once per member.
	batchDone := map[int]bool{}
	depth := 0
	for _, e := range events {
		switch e.Kind {
		case trace.Arrive:
			depth++
			ts.ObserveDepth(e.AtMs, depth)
		case trace.Complete, trace.Shed:
			if depth > 0 {
				depth--
			}
		case trace.StartBlock:
			opens[e.ReqID] = open{at: e.AtMs, dev: e.Device}
		case trace.EndBlock:
			o, ok := opens[e.ReqID]
			if !ok {
				break
			}
			delete(opens, e.ReqID)
			if e.Batch != 0 {
				if batchDone[e.Batch] {
					break
				}
				batchDone[e.Batch] = true
			}
			ts.ObserveBusy(o.dev, o.at, e.AtMs)
		}
	}
	return ts.Snapshot()
}
