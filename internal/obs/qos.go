package obs

import (
	"math"
	"sync"

	"split/internal/metrics"
	"split/internal/policy"
	"split/internal/stats"
)

// RollingQoS is the online counterpart of internal/metrics: it keeps the
// last N completed requests in a ring and computes the paper's QoS measures
// over that window by calling the *same* metrics/stats functions the
// offline harness uses — so the live violation rate and jitter agree
// exactly with ViolationRate/JitterByModel evaluated over the same records.
type RollingQoS struct {
	mu     sync.Mutex
	alpha  float64
	window []policy.Record
	next   int
	full   bool
	total  int
}

// DefaultQoSWindow is the completions window used when callers pass <= 0.
const DefaultQoSWindow = 256

// NewRollingQoS returns an estimator over the last `window` completions
// with latency-target multiplier alpha (defaults: window 256, alpha 4).
func NewRollingQoS(alpha float64, window int) *RollingQoS {
	if window <= 0 {
		window = DefaultQoSWindow
	}
	if alpha <= 0 {
		alpha = 4
	}
	return &RollingQoS{alpha: alpha, window: make([]policy.Record, window)}
}

// Observe adds one decided request — completed or shed — to the window.
// Shed requests carry their drop reason in Outcome, so the rolling
// violation rate sees them exactly like the offline harness does
// (ViolationRate counts every non-served record as a violation), while
// latency statistics skip them.
func (q *RollingQoS) Observe(rec policy.Record) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.window[q.next] = rec
	q.next++
	if q.next == len(q.window) {
		q.next = 0
		q.full = true
	}
	q.total++
	q.mu.Unlock()
}

// Records returns the windowed records oldest-first.
func (q *RollingQoS) Records() []policy.Record {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.recordsLocked()
}

func (q *RollingQoS) recordsLocked() []policy.Record {
	if !q.full {
		return append([]policy.Record(nil), q.window[:q.next]...)
	}
	out := make([]policy.Record, 0, len(q.window))
	out = append(out, q.window[q.next:]...)
	return append(out, q.window[:q.next]...)
}

// Gauges computes the two measures the serving path exports per settled
// request — rolling violation rate and jitter — in place over the ring.
// Snapshot copies the window (twice) to reuse the offline metrics
// functions; calling that once per completion put two O(window)
// allocations on the grant loop. Gauges walks the ring in the same
// oldest-first order with the same arithmetic (count/n; two-pass
// population stddev over served e2e), so its results are bit-identical to
// Snapshot's ViolationRate and JitterMs.
func (q *RollingQoS) Gauges() (violationRate, jitterMs float64) {
	if q == nil {
		return 0, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.next
	if q.full {
		n = len(q.window)
	}
	if n == 0 {
		return 0, 0
	}
	// start indexes the oldest record, matching recordsLocked's order.
	start := 0
	if q.full {
		start = q.next
	}
	violated, served := 0, 0
	var e2eSum float64
	for i := 0; i < n; i++ {
		r := &q.window[(start+i)%len(q.window)]
		if !r.Served() || r.ResponseRatio() > q.alpha {
			violated++
		}
		if r.Served() {
			served++
			e2eSum += r.E2EMs()
		}
	}
	violationRate = float64(violated) / float64(n)
	if served > 0 {
		mean := e2eSum / float64(served)
		var devSum float64
		for i := 0; i < n; i++ {
			r := &q.window[(start+i)%len(q.window)]
			if r.Served() {
				d := r.E2EMs() - mean
				devSum += d * d
			}
		}
		jitterMs = math.Sqrt(devSum / float64(served))
	}
	return violationRate, jitterMs
}

// QoSSnapshot is one rolling-window digest, JSON-ready for /queuez.
type QoSSnapshot struct {
	Alpha         float64 `json:"alpha"`
	Window        int     `json:"window"`         // records currently in the window
	Total         int     `json:"total"`          // lifetime completions observed
	ViolationRate float64 `json:"violation_rate"` // fraction with RR > α or shed (Fig. 6 formula)
	JitterMs      float64 `json:"jitter_ms"`      // stddev of e2e over served window records (Fig. 7 formula)
	MeanRR        float64 `json:"mean_rr"`
	MeanWaitMs    float64 `json:"mean_wait_ms"`
}

// Snapshot computes the current window digest. Nil-safe (zero snapshot).
func (q *RollingQoS) Snapshot() QoSSnapshot {
	if q == nil {
		return QoSSnapshot{}
	}
	q.mu.Lock()
	recs := q.recordsLocked()
	total := q.total
	alpha := q.alpha
	q.mu.Unlock()

	s := QoSSnapshot{Alpha: alpha, Window: len(recs), Total: total}
	if len(recs) == 0 {
		return s
	}
	s.ViolationRate = metrics.ViolationRate(recs, alpha)
	s.MeanRR = metrics.MeanResponseRatio(recs)
	s.MeanWaitMs = metrics.MeanWait(recs)
	// Jitter is the stddev of *observed* latency, so only served requests
	// belong in it: a shed request has no e2e latency, and folding its
	// shed-time stand-in into the spread would let deadline shedding
	// corrupt the jitter of the requests that actually completed. The
	// offline JitterByModel filters the same way.
	e2e := make([]float64, 0, len(recs))
	for _, r := range recs {
		if r.Served() {
			e2e = append(e2e, r.E2EMs())
		}
	}
	s.JitterMs = stats.StdDev(e2e)
	return s
}
