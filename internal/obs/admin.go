package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"split/internal/trace"
)

// AdminMux builds the splitd admin endpoint:
//
//	/metrics      Prometheus text exposition of reg
//	/healthz      JSON from health() (or {"status":"ok"} when nil)
//	/queuez       JSON from queuez() — the live queue snapshot
//	/tracez       flight-recorder dump of ring as JSON lines
//	/debug/pprof  the standard net/http/pprof handlers
//
// Any of reg, ring, queuez, health may be nil; the corresponding endpoint
// degrades to an empty-but-valid response. The mux is deliberately built
// from explicit pprof handler funcs rather than the package's init-time
// DefaultServeMux registration, so embedding programs keep control of what
// they expose.
func AdminMux(reg *Registry, ring *trace.Ring, queuez func() any, health func() any) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var v any = map[string]string{"status": "ok"}
		if health != nil {
			v = health()
		}
		writeJSON(w, v)
	})

	mux.HandleFunc("/queuez", func(w http.ResponseWriter, _ *http.Request) {
		var v any = struct{}{}
		if queuez != nil {
			v = queuez()
		}
		writeJSON(w, v)
	})

	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := ring.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
