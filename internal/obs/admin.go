package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"

	"split/internal/trace"
)

// AdminConfig assembles the splitd admin surface. Every field may be nil
// (or zero); the corresponding endpoint degrades to an empty-but-valid
// response, so callers wire only what they have.
type AdminConfig struct {
	// Registry backs /metrics.
	Registry *Registry
	// Ring is the flight recorder backing /tracez and /spanz.
	Ring *trace.Ring
	// Queuez provides the /queuez payload (live queue snapshot).
	Queuez func() any
	// Health provides the /healthz payload; when nil a default payload
	// with status plus build/version info is served.
	Health func() any
	// TimeSeries provides the /timeseriesz payload (rolling windowed QoS).
	TimeSeries func() TimeSeriesSnapshot
}

// Mux builds the admin endpoint:
//
//	/metrics      Prometheus text exposition of Registry
//	/healthz      JSON from Health (default includes build/version info)
//	/queuez       JSON from Queuez — the live queue snapshot
//	/tracez       flight-recorder dump as JSON lines; ?n= caps the event
//	              count (most recent), ?model= and ?kind= filter
//	/spanz        the ring folded into request span trees (SpanBuilder);
//	              ?n= keeps the most recently arrived requests
//	/timeseriesz  JSON from TimeSeries — windowed throughput/viol@α/
//	              depth/busy trajectory
//	/debug/pprof  the standard net/http/pprof handlers
//
// Every endpoint sets an explicit Content-Type. The mux is deliberately
// built from explicit pprof handler funcs rather than the package's
// init-time DefaultServeMux registration, so embedding programs keep
// control of what they expose.
func (c AdminConfig) Mux() *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := c.Registry.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var v any
		if c.Health != nil {
			v = c.Health()
		} else {
			v = map[string]string{
				"status":     "ok",
				"version":    BuildVersion(),
				"go_version": runtime.Version(),
			}
		}
		writeJSON(w, v)
	})

	mux.HandleFunc("/queuez", func(w http.ResponseWriter, _ *http.Request) {
		var v any = struct{}{}
		if c.Queuez != nil {
			v = c.Queuez()
		}
		writeJSON(w, v)
	})

	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		events := filterEvents(c.Ring.Snapshot(), r)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
	})

	mux.HandleFunc("/spanz", func(w http.ResponseWriter, r *http.Request) {
		n, err := intParam(r, "n", 0)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tree := trace.SpanBuilder{MaxRequests: n}.Build(c.Ring.Snapshot())
		writeJSON(w, tree)
	})

	mux.HandleFunc("/timeseriesz", func(w http.ResponseWriter, _ *http.Request) {
		var v TimeSeriesSnapshot
		if c.TimeSeries != nil {
			v = c.TimeSeries()
		}
		writeJSON(w, v)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// AdminMux is the pre-AdminConfig constructor, kept for callers that wire
// only the original four providers.
func AdminMux(reg *Registry, ring *trace.Ring, queuez func() any, health func() any) *http.ServeMux {
	return AdminConfig{Registry: reg, Ring: ring, Queuez: queuez, Health: health}.Mux()
}

// filterEvents applies the /tracez query knobs: ?model= and ?kind= keep
// matching events, ?n= keeps the most recent n after filtering. A bad ?n=
// is treated as absent (the dump endpoint stays forgiving).
func filterEvents(events []trace.Event, r *http.Request) []trace.Event {
	q := r.URL.Query()
	model, kind := q.Get("model"), q.Get("kind")
	if model != "" || kind != "" {
		kept := events[:0:0]
		for _, e := range events {
			if model != "" && e.Model != model {
				continue
			}
			if kind != "" && string(e.Kind) != kind {
				continue
			}
			kept = append(kept, e)
		}
		events = kept
	}
	if n, err := intParam(r, "n", 0); err == nil && n > 0 && n < len(events) {
		events = events[len(events)-n:]
	}
	return events
}

// intParam parses a non-negative integer query parameter, returning def
// when absent.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return def, fmt.Errorf("bad %s=%q: want a non-negative integer", name, raw)
	}
	return n, nil
}

// BuildVersion reports the binary's VCS revision (or module version) from
// the embedded build info, "unknown" when the binary was built without
// VCS stamping (e.g. `go test`).
func BuildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			return bi.Main.Version
		}
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
