package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"split/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestAdminMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("split_requests_total", "req", "model", "vgg19").Add(2)
	ring := trace.NewRing(16)
	ring.Emit(trace.Event{AtMs: 1, Kind: trace.Arrive, ReqID: 0, Model: "vgg19"})

	mux := AdminMux(reg, ring,
		func() any { return map[string]int{"depth": 3} },
		func() any { return map[string]string{"status": "ok", "mode": "test"} })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, ct, body := get(t, srv, "/metrics")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics: %d %s", code, ct)
	}
	if !strings.Contains(body, `split_requests_total{model="vgg19"} 2`) {
		t.Errorf("/metrics body:\n%s", body)
	}

	code, ct, body = get(t, srv, "/healthz")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/healthz: %d %s", code, ct)
	}
	var health map[string]string
	if err := json.Unmarshal([]byte(body), &health); err != nil || health["status"] != "ok" {
		t.Errorf("/healthz body %q: %v", body, err)
	}

	code, _, body = get(t, srv, "/queuez")
	var queue map[string]int
	if err := json.Unmarshal([]byte(body), &queue); err != nil || code != 200 || queue["depth"] != 3 {
		t.Errorf("/queuez %d %q: %v", code, body, err)
	}

	code, ct, body = get(t, srv, "/tracez")
	if code != 200 || !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("/tracez: %d %s", code, ct)
	}
	var ev trace.Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &ev); err != nil || ev.Kind != trace.Arrive {
		t.Errorf("/tracez body %q: %v", body, err)
	}

	// pprof index must answer (profile endpoints are exercised implicitly).
	if code, _, _ = get(t, srv, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: %d", code)
	}
}

func TestAdminMuxNilProviders(t *testing.T) {
	srv := httptest.NewServer(AdminMux(nil, nil, nil, nil))
	defer srv.Close()
	if code, _, body := get(t, srv, "/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if code, _, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if code, _, _ := get(t, srv, "/queuez"); code != 200 {
		t.Errorf("/queuez: %d", code)
	}
	if code, _, body := get(t, srv, "/tracez"); code != 200 || strings.TrimSpace(body) != "" {
		t.Errorf("/tracez: %d %q", code, body)
	}
	if code, ct, _ := get(t, srv, "/spanz"); code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/spanz: %d %s", code, ct)
	}
	if code, ct, _ := get(t, srv, "/timeseriesz"); code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/timeseriesz: %d %s", code, ct)
	}
}

// ringWithRun seeds a ring with a small two-request, two-model run.
func ringWithRun() *trace.Ring {
	ring := trace.NewRing(64)
	for _, e := range []trace.Event{
		{AtMs: 0, Kind: trace.Arrive, ReqID: 0, Model: "vgg19"},
		{AtMs: 1, Kind: trace.StartBlock, ReqID: 0, Model: "vgg19", Device: 0},
		{AtMs: 2, Kind: trace.Arrive, ReqID: 1, Model: "yolov2"},
		{AtMs: 5, Kind: trace.EndBlock, ReqID: 0, Model: "vgg19", Device: 0},
		{AtMs: 5, Kind: trace.Complete, ReqID: 0, Model: "vgg19"},
		{AtMs: 5, Kind: trace.StartBlock, ReqID: 1, Model: "yolov2", Device: 0},
		{AtMs: 9, Kind: trace.EndBlock, ReqID: 1, Model: "yolov2", Device: 0},
		{AtMs: 9, Kind: trace.Complete, ReqID: 1, Model: "yolov2"},
	} {
		ring.Emit(e)
	}
	return ring
}

// TestAdminTracezFilters exercises ?model=, ?kind= and ?n= on /tracez.
func TestAdminTracezFilters(t *testing.T) {
	srv := httptest.NewServer(AdminConfig{Ring: ringWithRun()}.Mux())
	defer srv.Close()

	lines := func(body string) []string {
		body = strings.TrimSpace(body)
		if body == "" {
			return nil
		}
		return strings.Split(body, "\n")
	}

	if _, _, body := get(t, srv, "/tracez"); len(lines(body)) != 8 {
		t.Errorf("unfiltered /tracez: %d lines, want 8", len(lines(body)))
	}
	_, _, body := get(t, srv, "/tracez?model=vgg19")
	if got := lines(body); len(got) != 4 {
		t.Errorf("model filter: %d lines, want 4: %q", len(got), body)
	} else {
		for _, l := range got {
			if !strings.Contains(l, `"vgg19"`) {
				t.Errorf("model filter leaked: %q", l)
			}
		}
	}
	if _, _, body := get(t, srv, "/tracez?kind=arrive"); len(lines(body)) != 2 {
		t.Errorf("kind filter: %q", body)
	}
	if _, _, body := get(t, srv, "/tracez?kind=complete&model=yolov2"); len(lines(body)) != 1 {
		t.Errorf("combined filter: %q", body)
	}
	_, _, body = get(t, srv, "/tracez?n=2")
	if got := lines(body); len(got) != 2 || !strings.Contains(got[1], `"complete"`) {
		t.Errorf("n filter should keep the most recent events: %q", body)
	}
	// A malformed n is forgiven on the dump endpoint.
	if code, _, _ := get(t, srv, "/tracez?n=bogus"); code != 200 {
		t.Errorf("/tracez?n=bogus: %d", code)
	}
}

// TestAdminSpanz: the ring folds into span trees over HTTP, ?n= trims, and
// a malformed n is a 400.
func TestAdminSpanz(t *testing.T) {
	srv := httptest.NewServer(AdminConfig{Ring: ringWithRun()}.Mux())
	defer srv.Close()

	_, ct, body := get(t, srv, "/spanz")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %s", ct)
	}
	var tree trace.SpanTree
	if err := json.Unmarshal([]byte(body), &tree); err != nil {
		t.Fatalf("/spanz body: %v", err)
	}
	if len(tree.Requests) != 2 || len(tree.Problems) != 0 {
		t.Fatalf("tree = %+v", tree)
	}
	r1 := tree.Span(1)
	if r1 == nil || r1.WaitMs != 3 || r1.ExecMs != 4 {
		t.Errorf("span 1 = %+v, want wait=3 exec=4", r1)
	}

	_, _, body = get(t, srv, "/spanz?n=1")
	if err := json.Unmarshal([]byte(body), &tree); err != nil {
		t.Fatal(err)
	}
	if len(tree.Requests) != 1 || tree.Requests[0].ReqID != 1 {
		t.Errorf("?n=1 kept %+v, want just req 1", tree.Requests)
	}
	if code, _, _ := get(t, srv, "/spanz?n=-3"); code != 400 {
		t.Errorf("/spanz?n=-3: %d, want 400", code)
	}
}

// TestAdminTimeseriesz serves the provider's snapshot as JSON.
func TestAdminTimeseriesz(t *testing.T) {
	ts := NewTimeSeries(4, 100, 10, 1)
	ts.ObserveArrival(10)
	ts.ObserveOutcome(served(0, 10, 90, 40))
	srv := httptest.NewServer(AdminConfig{TimeSeries: ts.Snapshot}.Mux())
	defer srv.Close()

	_, ct, body := get(t, srv, "/timeseriesz")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %s", ct)
	}
	var snap TimeSeriesSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Windows) != 1 || snap.Windows[0].Completions != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}

// TestAdminHealthzDefaultHasBuildInfo: the default payload carries version
// fields so a bare mux still identifies its binary.
func TestAdminHealthzDefaultHasBuildInfo(t *testing.T) {
	srv := httptest.NewServer(AdminConfig{}.Mux())
	defer srv.Close()
	_, _, body := get(t, srv, "/healthz")
	var health map[string]string
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["version"] == "" || health["go_version"] == "" {
		t.Errorf("healthz = %+v, want status/version/go_version", health)
	}
}
