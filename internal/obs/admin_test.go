package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"split/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestAdminMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("split_requests_total", "req", "model", "vgg19").Add(2)
	ring := trace.NewRing(16)
	ring.Emit(trace.Event{AtMs: 1, Kind: trace.Arrive, ReqID: 0, Model: "vgg19"})

	mux := AdminMux(reg, ring,
		func() any { return map[string]int{"depth": 3} },
		func() any { return map[string]string{"status": "ok", "mode": "test"} })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, ct, body := get(t, srv, "/metrics")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics: %d %s", code, ct)
	}
	if !strings.Contains(body, `split_requests_total{model="vgg19"} 2`) {
		t.Errorf("/metrics body:\n%s", body)
	}

	code, ct, body = get(t, srv, "/healthz")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/healthz: %d %s", code, ct)
	}
	var health map[string]string
	if err := json.Unmarshal([]byte(body), &health); err != nil || health["status"] != "ok" {
		t.Errorf("/healthz body %q: %v", body, err)
	}

	code, _, body = get(t, srv, "/queuez")
	var queue map[string]int
	if err := json.Unmarshal([]byte(body), &queue); err != nil || code != 200 || queue["depth"] != 3 {
		t.Errorf("/queuez %d %q: %v", code, body, err)
	}

	code, ct, body = get(t, srv, "/tracez")
	if code != 200 || !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("/tracez: %d %s", code, ct)
	}
	var ev trace.Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &ev); err != nil || ev.Kind != trace.Arrive {
		t.Errorf("/tracez body %q: %v", body, err)
	}

	// pprof index must answer (profile endpoints are exercised implicitly).
	if code, _, _ = get(t, srv, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: %d", code)
	}
}

func TestAdminMuxNilProviders(t *testing.T) {
	srv := httptest.NewServer(AdminMux(nil, nil, nil, nil))
	defer srv.Close()
	if code, _, body := get(t, srv, "/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if code, _, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if code, _, _ := get(t, srv, "/queuez"); code != 200 {
		t.Errorf("/queuez: %d", code)
	}
	if code, _, body := get(t, srv, "/tracez"); code != 200 || strings.TrimSpace(body) != "" {
		t.Errorf("/tracez: %d %q", code, body)
	}
}
