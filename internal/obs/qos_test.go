package obs

import (
	"math"
	"sync"
	"testing"

	"split/internal/metrics"
	"split/internal/policy"
	"split/internal/stats"
)

// rec builds a completed record with the given response ratio (ExtMs 10).
func rec(id int, rr float64) policy.Record {
	return policy.Record{
		ID: id, Model: "m", ArriveMs: float64(id) * 5,
		StartMs: float64(id) * 5, DoneMs: float64(id)*5 + rr*10, ExtMs: 10,
	}
}

// TestRollingAgreesWithOffline is the acceptance check: the live rolling
// violation rate and jitter must equal the offline metrics computed over
// the same records.
func TestRollingAgreesWithOffline(t *testing.T) {
	q := NewRollingQoS(4, 64)
	var recs []policy.Record
	for i, rr := range []float64{1, 2, 3.5, 4.5, 6, 1.2, 8, 3.9} {
		r := rec(i, rr)
		recs = append(recs, r)
		q.Observe(r)
	}
	s := q.Snapshot()
	if want := metrics.ViolationRate(recs, 4); s.ViolationRate != want {
		t.Errorf("violation rate %v, offline %v", s.ViolationRate, want)
	}
	if want := metrics.MeanResponseRatio(recs); math.Abs(s.MeanRR-want) > 1e-12 {
		t.Errorf("mean RR %v, offline %v", s.MeanRR, want)
	}
	if want := metrics.MeanWait(recs); math.Abs(s.MeanWaitMs-want) > 1e-12 {
		t.Errorf("mean wait %v, offline %v", s.MeanWaitMs, want)
	}
	e2e := make([]float64, len(recs))
	for i, r := range recs {
		e2e[i] = r.E2EMs()
	}
	if want := stats.StdDev(e2e); math.Abs(s.JitterMs-want) > 1e-12 {
		t.Errorf("jitter %v, offline %v", s.JitterMs, want)
	}
	if s.Window != len(recs) || s.Total != len(recs) || s.Alpha != 4 {
		t.Errorf("snapshot meta: %+v", s)
	}
}

// TestRollingWindowEviction checks only the last N completions count.
func TestRollingWindowEviction(t *testing.T) {
	q := NewRollingQoS(4, 4)
	// 4 old violations that must be evicted...
	for i := 0; i < 4; i++ {
		q.Observe(rec(i, 10))
	}
	// ...by 4 fresh non-violations.
	for i := 4; i < 8; i++ {
		q.Observe(rec(i, 2))
	}
	s := q.Snapshot()
	if s.ViolationRate != 0 {
		t.Errorf("violation rate %v after eviction, want 0", s.ViolationRate)
	}
	if s.Window != 4 || s.Total != 8 {
		t.Errorf("window=%d total=%d", s.Window, s.Total)
	}
	got := q.Records()
	if len(got) != 4 || got[0].ID != 4 || got[3].ID != 7 {
		t.Errorf("records = %+v", got)
	}
}

// TestRollingShedsInWindow pins the shed-accounting fix: shed requests in
// the window raise the violation rate exactly as the offline harness counts
// them (every non-served record violates), while the latency statistics —
// jitter above all — are computed over served records only, so a burst of
// deadline sheds can no longer masquerade as latency spread.
func TestRollingShedsInWindow(t *testing.T) {
	q := NewRollingQoS(4, 64)
	var served []policy.Record
	for i, rr := range []float64{1, 2, 3} {
		r := rec(i, rr)
		served = append(served, r)
		q.Observe(r)
	}
	sheds := []policy.Record{
		{ID: 10, Model: "m", ArriveMs: 50, StartMs: -1, DoneMs: 500, ExtMs: 10, Outcome: "deadline"},
		{ID: 11, Model: "m", ArriveMs: 55, StartMs: 60, DoneMs: 800, ExtMs: 10, Outcome: "canceled"},
	}
	for _, r := range sheds {
		q.Observe(r)
	}
	s := q.Snapshot()
	all := append(append([]policy.Record(nil), served...), sheds...)
	if want := metrics.ViolationRate(all, 4); s.ViolationRate != want {
		t.Errorf("violation rate %v, offline over served+shed %v", s.ViolationRate, want)
	}
	if s.ViolationRate != 2.0/5.0 {
		t.Errorf("violation rate %v, want 0.4 (2 sheds of 5 records)", s.ViolationRate)
	}
	e2e := make([]float64, len(served))
	for i, r := range served {
		e2e[i] = r.E2EMs()
	}
	if want := stats.StdDev(e2e); math.Abs(s.JitterMs-want) > 1e-12 {
		t.Errorf("jitter %v, want served-only stddev %v", s.JitterMs, want)
	}
	if want := metrics.MeanResponseRatio(served); math.Abs(s.MeanRR-want) > 1e-12 {
		t.Errorf("mean RR %v polluted by sheds, want %v", s.MeanRR, want)
	}
	if s.Window != 5 || s.Total != 5 {
		t.Errorf("window=%d total=%d, want 5/5", s.Window, s.Total)
	}
}

func TestRollingDefaultsAndNil(t *testing.T) {
	q := NewRollingQoS(0, 0)
	if len(q.window) != DefaultQoSWindow || q.alpha != 4 {
		t.Errorf("defaults: window=%d alpha=%v", len(q.window), q.alpha)
	}
	if s := q.Snapshot(); s.Window != 0 || s.ViolationRate != 0 {
		t.Errorf("empty snapshot: %+v", s)
	}
	var nilQ *RollingQoS
	nilQ.Observe(rec(0, 1)) // must not panic
	if s := nilQ.Snapshot(); s != (QoSSnapshot{}) {
		t.Errorf("nil snapshot: %+v", s)
	}
	if nilQ.Records() != nil {
		t.Error("nil records")
	}
}

func TestRollingConcurrent(t *testing.T) {
	q := NewRollingQoS(4, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q.Observe(rec(g*200+i, float64(i%8)+0.5))
				_ = q.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	s := q.Snapshot()
	if s.Total != 1600 || s.Window != 128 {
		t.Fatalf("total=%d window=%d", s.Total, s.Window)
	}
}

// TestGaugesMatchSnapshot pins the bit-identity contract Gauges documents:
// the allocation-free in-place walk must reproduce Snapshot's
// ViolationRate and JitterMs exactly (==, not within epsilon) at every
// fill level — partial window, exactly full, and wrapped — and across
// served/shed mixes.
func TestGaugesMatchSnapshot(t *testing.T) {
	q := NewRollingQoS(4, 8)
	if vr, jit := q.Gauges(); vr != 0 || jit != 0 {
		t.Fatalf("empty window: Gauges() = %v, %v", vr, jit)
	}
	var nilQ *RollingQoS
	if vr, jit := nilQ.Gauges(); vr != 0 || jit != 0 {
		t.Fatalf("nil receiver: Gauges() = %v, %v", vr, jit)
	}
	rrs := []float64{1, 5.5, 2.3, 4.0001, 3.9, 7, 0.5, 1.1, 6.6, 2.2, 9, 1.7, 3.3}
	for i, rr := range rrs {
		r := rec(i, rr)
		if i%4 == 3 { // every fourth record is a shed, not a completion
			r.Outcome = policy.OutcomeDeadline
			r.DoneMs = r.ArriveMs + 1
		}
		q.Observe(r)
		s := q.Snapshot()
		vr, jit := q.Gauges()
		if vr != s.ViolationRate || jit != s.JitterMs {
			t.Fatalf("after %d records: Gauges() = (%v, %v), Snapshot = (%v, %v)",
				i+1, vr, jit, s.ViolationRate, s.JitterMs)
		}
	}
}
