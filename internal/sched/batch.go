package sched

// This file implements same-type micro-batch formation. The elastic
// mechanism (§3.3) already recognizes same-type runs at the queue front —
// FIFO makes preemption useless among them, so splitting is suppressed.
// Batching exploits the same structure for throughput: when the request
// granted the device leads a run of same-type neighbors at the same block
// boundary, up to Max of them execute that block as one batched device
// grant instead of serially.
//
// Formation happens ONLY at block boundaries, for the same reason blocks
// exist at all: the preemption-latency bound (a newly arrived request waits
// at most one device hold) must survive batching. A batched hold is longer
// than a scalar one — t(b,n) per gpusim.BatchCost — but it is still one
// boundary-delimited hold, and Max caps how far it stretches.

// BatchPlanner forms same-type micro-batches at block boundaries. The
// planner is pure state-free configuration, like the rest of this package:
// the identical planner drives both the discrete-event simulator
// (internal/policy) and the real-time serving path (internal/serve), which
// is what makes sim-vs-serve batching parity testable.
type BatchPlanner struct {
	// Max is the maximum batch size, counting the granted head request.
	// <= 1 disables batching entirely: Form never touches the queue.
	Max int
}

// Enabled reports whether the planner can form batches at all.
func (p BatchPlanner) Enabled() bool { return p.Max > 1 }

// joinable reports whether the queue-front request next can join a batch
// led by head at nowMs. The rules keep a batch indistinguishable from the
// serial schedule it replaces, just faster:
//
//   - same model AND same next-block index with an equally shaped plan —
//     members execute the *same* block for the same serial duration (plans
//     are per-model, so same model + same plan length implies identical
//     block times; a split member never pairs with an elastic-suppressed
//     unsplit one);
//   - not canceled and not deadline-doomed: a batch never spans a request
//     the boundary sweep is about to shed, so batching cannot resurrect
//     dead work or burn device time on it.
func joinable(head, next *Request, nowMs float64) bool {
	return next.Model == head.Model &&
		next.Next == head.Next &&
		len(next.BlockTimes) == len(head.BlockTimes) &&
		!next.Canceled &&
		!next.Doomed(nowMs)
}

// Form extends the already-popped head request into a batch for its next
// block: it pops contiguous queue-front requests that satisfy joinable, up
// to Max members total, and returns the batch in grant order (head first).
// FIFO within the batch holds by construction — members come off the queue
// front in queue order, and the greedy queue keeps same-task requests in
// arrival order. Stopping at the first non-joinable request (rather than
// skipping it) is what preserves FIFO against the rest of the queue: a
// request never batches past work scheduled ahead of it.
//
// The same-type signal is the elastic mechanism's: a run exists exactly
// when SameTypeCount sees a same-model waiting neighbor. With Max <= 1, or
// no run, Form returns just the head and the queue is untouched — the
// disabled path costs one length check.
//
// Form allocates a fresh slice per grant; grant loops should call FormInto
// with a per-device scratch buffer instead.
func (p BatchPlanner) Form(q *Queue, head *Request, nowMs float64) []*Request {
	return p.FormInto(nil, q, head, nowMs)
}

// FormInto is Form appending into dst (normally a per-device scratch
// buffer resliced to zero length), so steady-state grants reuse one
// backing array instead of allocating per block.
//
//lint:hotpath batch formation runs at every device grant
func (p BatchPlanner) FormInto(dst []*Request, q *Queue, head *Request, nowMs float64) []*Request {
	batch := append(dst, head)
	if p.Max <= 1 || q.Len() == 0 {
		return batch
	}
	if head.Canceled || head.Doomed(nowMs) {
		// The head is about to be shed at this boundary; don't pull
		// healthy work into its grant.
		return batch
	}
	if q.SameTypeCount(head.Model) == 0 {
		return batch // no same-type run at the front (§3.3 signal)
	}
	for len(batch) < p.Max && q.Len() > 0 && joinable(head, q.At(0), nowMs) {
		//lint:ignore hotalloc bounded by Max: the scratch buffer stops growing after the first full batch
		batch = append(batch, q.PopFront())
	}
	return batch
}
