package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"split/internal/model"
	"split/internal/trace"
)

func newReq(id int, modelName string, arrive, ext float64, blocks ...float64) *Request {
	if len(blocks) == 0 {
		blocks = []float64{ext}
	}
	return NewRequest(id, modelName, model.Short, arrive, ext, blocks)
}

func TestRequestHelpers(t *testing.T) {
	r := newReq(1, "m", 10, 30, 10, 10, 10)
	if got := r.RemainingMs(); got != 30 {
		t.Errorf("remaining = %v", got)
	}
	if got := r.PlannedMs(); got != 30 {
		t.Errorf("planned = %v", got)
	}
	if r.Finished() {
		t.Error("fresh request finished")
	}
	r.Next = 2
	if got := r.RemainingMs(); got != 10 {
		t.Errorf("remaining after 2 blocks = %v", got)
	}
	r.Next = 3
	if !r.Finished() {
		t.Error("exhausted request not finished")
	}
	if got := r.TargetMs(4); got != 120 {
		t.Errorf("target = %v", got)
	}
}

func TestE2EAndResponseRatio(t *testing.T) {
	r := newReq(1, "m", 100, 20)
	r.DoneMs = 180
	if got := r.E2EMs(); got != 80 {
		t.Errorf("e2e = %v", got)
	}
	if got := r.ResponseRatio(); got != 4 {
		t.Errorf("rr = %v", got)
	}
}

func TestE2EPanicsWhenIncomplete(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("E2EMs on pending request did not panic")
		}
	}()
	newReq(1, "m", 0, 10).E2EMs()
}

func TestPredictedRR(t *testing.T) {
	r := newReq(1, "m", 0, 10)
	// At t=5, with 15ms of queue ahead: (5 + 15 + 10) / (4*10) = 0.75.
	if got := r.PredictedRR(5, 15, 4); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("predicted rr = %v", got)
	}
}

func TestQueueBasicOps(t *testing.T) {
	q := NewQueue(4)
	if q.PopFront() != nil {
		t.Error("pop from empty queue")
	}
	a := newReq(1, "a", 0, 10)
	b := newReq(2, "b", 0, 20)
	q.PushBack(a)
	q.PushBack(b)
	if q.Len() != 2 || q.At(0) != a || q.At(1) != b {
		t.Error("push order broken")
	}
	if got := q.TotalRemainingMs(); got != 30 {
		t.Errorf("total remaining = %v", got)
	}
	if q.SameTypeCount("a") != 1 || q.SameTypeCount("c") != 0 {
		t.Error("same type count wrong")
	}
	if q.PopFront() != a || q.PopFront() != b || q.PopFront() != nil {
		t.Error("pop order broken")
	}
}

func TestInsertGreedyShortPassesLong(t *testing.T) {
	q := NewQueue(4)
	long := newReq(1, "vgg", 0, 67.5)
	q.InsertGreedy(0, long)
	short := newReq(2, "yolo", 1, 10.8)
	pos := q.InsertGreedy(1, short)
	if pos != 0 {
		t.Errorf("short inserted at %d, want 0", pos)
	}
	if q.At(0) != short || q.At(1) != long {
		t.Error("queue order wrong")
	}
}

func TestInsertGreedyLongDoesNotPassShort(t *testing.T) {
	q := NewQueue(4)
	short := newReq(1, "yolo", 0, 10.8)
	q.InsertGreedy(0, short)
	long := newReq(2, "vgg", 1, 67.5)
	pos := q.InsertGreedy(1, long)
	if pos != 1 {
		t.Errorf("long inserted at %d, want 1", pos)
	}
}

func TestInsertGreedySameTypeFIFO(t *testing.T) {
	q := NewQueue(4)
	first := newReq(1, "yolo", 0, 10.8)
	q.InsertGreedy(0, first)
	second := newReq(2, "yolo", 1, 10.8)
	pos := q.InsertGreedy(1, second)
	if pos != 1 {
		t.Errorf("same-type request inserted at %d, want 1 (FIFO)", pos)
	}
}

func TestInsertGreedySameTypeBarrierStopsBubbling(t *testing.T) {
	// Queue: [yolo(old), vgg]. A new yolo must not pass the old yolo even
	// though it would pass the vgg.
	q := NewQueue(4)
	q.InsertGreedy(0, newReq(1, "yolo", 0, 10.8))
	q.InsertGreedy(0, newReq(2, "vgg", 0.5, 67.5))
	if q.At(0).Model != "yolo" {
		t.Fatal("setup wrong")
	}
	pos := q.InsertGreedy(1, newReq(3, "yolo", 1, 10.8))
	if pos != 1 {
		t.Errorf("new yolo at %d, want 1 (behind old yolo, ahead of vgg)", pos)
	}
	if q.At(1).ID != 3 || q.At(2).Model != "vgg" {
		t.Errorf("order: %v %v %v", q.At(0).ID, q.At(1).ID, q.At(2).ID)
	}
}

func TestReinsertedEarlierArrivalPassesSameType(t *testing.T) {
	// A partially executed request (arrived at t=0) re-enters a queue that
	// holds a same-type later arrival. FIFO means the earlier one goes ahead.
	q := NewQueue(4)
	later := newReq(2, "vgg", 5, 67.5, 22.5, 22.5, 22.5)
	q.InsertGreedy(5, later)
	earlier := newReq(1, "vgg", 0, 67.5, 22.5, 22.5, 22.5)
	earlier.Next = 1 // one block already executed
	pos := q.InsertGreedy(6, earlier)
	if pos != 0 {
		t.Errorf("earlier same-type arrival re-inserted at %d, want 0", pos)
	}
}

func TestInsertGreedySkipsManyAndOrdersBySRPT(t *testing.T) {
	// With one α for all requests, the bubble condition E_b·T_b < E_a·T_a
	// reduces to shortest-remaining-first among distinct types.
	q := NewQueue(4)
	exts := []float64{67.5, 28.35, 20.4, 13.2}
	names := []string{"vgg", "resnet", "gpt", "google"}
	for i, e := range exts {
		q.InsertGreedy(0, newReq(i, names[i], 0, e))
	}
	// They arrived in decreasing size, so greedy insertion should have
	// sorted them ascending.
	for i := 1; i < q.Len(); i++ {
		if q.At(i-1).ExtMs > q.At(i).ExtMs {
			t.Fatalf("queue not sorted by remaining time: %v then %v", q.At(i-1).ExtMs, q.At(i).ExtMs)
		}
	}
	// A new yolo (10.8ms) goes to the very front.
	if pos := q.InsertGreedy(0, newReq(9, "yolo", 0, 10.8)); pos != 0 {
		t.Errorf("yolo at %d", pos)
	}
}

// The bubble condition must agree with brute-force comparison of summed
// predicted response ratios for adjacent pairs.
func TestSwapConditionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seedRaw int64) bool {
		r := rand.New(rand.NewSource(seedRaw))
		now := 100 * r.Float64()
		alpha := 1 + 9*r.Float64()
		a := newReq(1, "a", now*r.Float64(), 1+60*r.Float64())
		b := newReq(2, "b", now*r.Float64(), 1+60*r.Float64())
		w := 50 * r.Float64()
		// Order (a,b): a waits w, b waits w+Ea.
		sumAB := a.PredictedRR(now, w, alpha) + b.PredictedRR(now, w+a.RemainingMs(), alpha)
		sumBA := b.PredictedRR(now, w, alpha) + a.PredictedRR(now, w+b.RemainingMs(), alpha)
		want := sumBA < sumAB-1e-12
		got := swapBeneficial(a, b, alpha)
		if want != got {
			// Allow boundary ties to disagree within epsilon.
			return math.Abs(sumBA-sumAB) < 1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestInsertGreedyExplainMatchesInsertGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	models := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 200; trial++ {
		q1 := NewQueue(4)
		q2 := NewQueue(4)
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			m := models[rng.Intn(len(models))]
			at := float64(i)
			ext := 1 + 60*rng.Float64()
			q1.InsertGreedy(at, newReq(i, m, at, ext))
			q2.InsertGreedy(at, newReq(i, m, at, ext))
		}
		m := models[rng.Intn(len(models))]
		r1 := newReq(99, m, float64(n), 15)
		r2 := newReq(99, m, float64(n), 15)
		p1 := q1.InsertGreedy(float64(n), r1)
		p2, decisions := q2.InsertGreedyExplain(float64(n), r2)
		if p1 != p2 {
			t.Fatalf("trial %d: positions differ %d vs %d", trial, p1, p2)
		}
		if p2 < q2.Len()-1 && len(decisions) == 0 {
			t.Fatalf("trial %d: moved forward with no decisions", trial)
		}
	}
}

func TestExplainDecisionsRRBounds(t *testing.T) {
	q := NewQueue(4)
	q.InsertGreedy(0, newReq(1, "vgg", 0, 67.5))
	q.InsertGreedy(0, newReq(2, "resnet", 0, 28.35))
	_, decisions := q.InsertGreedyExplain(1, newReq(3, "yolo", 1, 10.8))
	if len(decisions) != 2 {
		t.Fatalf("decisions = %d", len(decisions))
	}
	for _, d := range decisions {
		if d.NewRRFront > d.NewRRBack {
			t.Errorf("moving forward increased RR: %+v", d)
		}
	}
}

func TestQueueNeverLosesRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := NewQueue(4)
	inserted := 0
	for i := 0; i < 500; i++ {
		if rng.Float64() < 0.6 || q.Len() == 0 {
			q.InsertGreedy(float64(i), newReq(i, "m"+string(rune('a'+rng.Intn(4))), float64(i), 1+50*rng.Float64()))
			inserted++
		} else {
			if q.PopFront() == nil {
				t.Fatal("pop returned nil on non-empty queue")
			}
			inserted--
		}
		if q.Len() != inserted {
			t.Fatalf("len %d != tracked %d", q.Len(), inserted)
		}
	}
}

func TestElasticDisabled(t *testing.T) {
	e := Elastic{Enabled: false}
	q := NewQueue(4)
	for i := 0; i < 50; i++ {
		q.PushBack(newReq(i, "x", 0, 10))
	}
	if !e.ShouldSplit(q, "x") {
		t.Error("disabled elastic still blocked splitting")
	}
}

func TestElasticHighLoadTrigger(t *testing.T) {
	e := Elastic{Enabled: true, HighLoadQueueLen: 3}
	q := NewQueue(4)
	if !e.ShouldSplit(q, "x") {
		t.Error("empty queue should split")
	}
	for i := 0; i < 3; i++ {
		q.PushBack(newReq(i, "y", 0, 10))
	}
	if e.ShouldSplit(q, "x") {
		t.Error("high load should disable splitting")
	}
}

func TestElasticSameTypeTrigger(t *testing.T) {
	e := Elastic{Enabled: true, SameTypeLimit: 2}
	q := NewQueue(4)
	q.PushBack(newReq(1, "x", 0, 10))
	if !e.ShouldSplit(q, "x") {
		t.Error("one same-type should still split")
	}
	q.PushBack(newReq(2, "x", 0, 10))
	if e.ShouldSplit(q, "x") {
		t.Error("same-type burst should disable splitting")
	}
	if !e.ShouldSplit(q, "z") {
		t.Error("other models unaffected by x burst")
	}
}

func TestElasticZeroThresholdsDisableTriggers(t *testing.T) {
	e := Elastic{Enabled: true}
	q := NewQueue(4)
	for i := 0; i < 100; i++ {
		q.PushBack(newReq(i, "x", 0, 10))
	}
	if !e.ShouldSplit(q, "x") {
		t.Error("zero thresholds should never trigger")
	}
}

func TestDefaultElastic(t *testing.T) {
	e := DefaultElastic()
	if !e.Enabled || e.HighLoadQueueLen <= 0 || e.SameTypeLimit <= 0 {
		t.Errorf("bad defaults: %+v", e)
	}
}

func TestPredictedPlainRR(t *testing.T) {
	r := newReq(1, "m", 0, 10)
	// At t=5 with 15ms ahead: (5 + 15 + 10) / 10 = 3.
	if got := r.PredictedPlainRR(5, 15); math.Abs(got-3) > 1e-12 {
		t.Errorf("plain rr = %v", got)
	}
}

func TestStarveGuardBlocksPassing(t *testing.T) {
	q := NewQueue(4)
	q.StarveGuardRR = 3
	long := newReq(1, "vgg", 0, 67.5)
	q.InsertGreedy(0, long)
	// At t=200 the long's predicted plain RR is (200+67.5)/67.5 ≈ 3.96 >= 3:
	// a short may no longer pass it.
	short := newReq(2, "yolo", 200, 10.8)
	if pos := q.InsertGreedy(200, short); pos != 1 {
		t.Errorf("short passed a starving long (pos %d)", pos)
	}
	// Before the guard trips (t=50: RR ≈ 1.74) the short still passes.
	q2 := NewQueue(4)
	q2.StarveGuardRR = 3
	q2.InsertGreedy(0, newReq(1, "vgg", 0, 67.5))
	if pos := q2.InsertGreedy(50, newReq(2, "yolo", 50, 10.8)); pos != 0 {
		t.Errorf("short blocked by non-starving long (pos %d)", pos)
	}
}

func TestStarveGuardDisabledByDefault(t *testing.T) {
	q := NewQueue(4)
	q.InsertGreedy(0, newReq(1, "vgg", 0, 67.5))
	if pos := q.InsertGreedy(1e6, newReq(2, "yolo", 1e6, 10.8)); pos != 0 {
		t.Errorf("default queue applied a guard (pos %d)", pos)
	}
}

// TestQueueSinkEmitsEnqueueEvents checks the live instrumentation hook:
// every greedy insertion reports its decision to the attached sink, and a
// nil sink keeps the queue silent.
func TestQueueSinkEmitsEnqueueEvents(t *testing.T) {
	sink := trace.New()
	q := NewQueue(4)
	q.Sink = sink
	q.InsertGreedy(0, newReq(1, "vgg", 0, 67.5))
	q.InsertGreedy(5, newReq(2, "yolo", 5, 10.8))
	q.InsertGreedyExplain(9, newReq(3, "lstm", 9, 6.8))
	evs := sink.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Kind != trace.Enqueue {
			t.Errorf("event %d kind %q", i, ev.Kind)
		}
	}
	if evs[1].ReqID != 2 || evs[1].Model != "yolo" || evs[1].AtMs != 5 {
		t.Errorf("event = %+v", evs[1])
	}
	// The short passed the long: pos=0 at depth 2.
	if evs[1].Detail != "pos=0 depth=2" {
		t.Errorf("detail = %q", evs[1].Detail)
	}

	// Nil sink: no panic, no events.
	q2 := NewQueue(4)
	q2.InsertGreedy(0, newReq(9, "vgg", 0, 67.5))
	if q2.Len() != 1 {
		t.Fatal("insert without sink failed")
	}
}
