// Package sched implements the online half of SPLIT: the request abstraction,
// the response-ratio QoS model (Eq. 3), the greedy block-level preemption
// algorithm (Algorithm 1), and the elastic splitting mechanism (§3.3).
//
// The scheduler is a pure data structure — it owns no clock and runs no
// goroutines — so the same code drives both the discrete-event simulator
// (internal/policy) and the real-time serving path (internal/serve).
package sched

import (
	"fmt"

	"split/internal/model"
	"split/internal/trace"
)

// Request is one in-flight inference request. Times are in milliseconds on
// whatever clock the caller supplies (virtual or real).
type Request struct {
	// ID is unique per workload.
	ID int
	// Model is the task type; requests with equal Model are "from the same
	// task" for the FIFO rule.
	Model string
	// Class is the short/long taxonomy from Table 1.
	Class model.RequestClass
	// ArriveMs is the arrival (enqueue) time.
	ArriveMs float64
	// ExtMs is t_ext: the isolated, unsplit execution time that the request's
	// latency target is based on (§2.1). It is independent of the plan the
	// scheduler actually executes.
	ExtMs float64
	// BlockTimes is the execution plan: the per-block times the request will
	// occupy the device for, including splitting overheads. len == 1 means
	// the request runs unsplit.
	BlockTimes []float64
	// Next indexes the next block to execute. Blocks < Next are committed
	// (executed or in flight).
	Next int
	// StartMs is the time the first block started, or -1 before that.
	StartMs float64
	// DoneMs is the completion time, or -1 while pending.
	DoneMs float64
	// Preemptions counts how many times the request was passed by a later
	// arrival between its blocks.
	Preemptions int
	// AlphaOverride, when > 0, replaces the queue-wide α for this request's
	// latency target — the §2.2 observation that short requests usually
	// carry stricter targets than long ones. 0 keeps the queue default
	// (the paper's uniform-α evaluation setting).
	AlphaOverride float64
	// DeadlineMs is the absolute deadline on the caller's clock: once it
	// passes, the request must never be granted the device for another
	// block — it is shed at the next block boundary instead (the
	// EdgeServing-style extension of the α·t_ext target). <= 0 (the
	// default) means no deadline.
	DeadlineMs float64
	// Canceled marks the request cancel-at-next-boundary: the scheduler
	// must not grant it another block. The serving path sets it for client
	// cancellations and connection losses; the queue itself never does.
	Canceled bool
	// Device is the fleet device the placement layer assigned the request
	// to. The queue itself never reads it — each device has its own queue —
	// but executors and cancellation paths route by it. 0 on a
	// single-device deployment.
	Device int
	// Partition is the device partition slot the placement layer assigned
	// the request to under spatial sharing; cancellation routes by
	// (Device, Partition) since each lane has its own queue. 0 on
	// unpartitioned deployments.
	Partition int
}

// NewRequest builds a request with sentinel times set.
func NewRequest(id int, modelName string, class model.RequestClass, arriveMs, extMs float64, blocks []float64) *Request {
	return &Request{
		ID:         id,
		Model:      modelName,
		Class:      class,
		ArriveMs:   arriveMs,
		ExtMs:      extMs,
		BlockTimes: blocks,
		StartMs:    -1,
		DoneMs:     -1,
	}
}

// RemainingMs returns Ext_left: the summed time of uncommitted blocks.
func (r *Request) RemainingMs() float64 {
	var t float64
	for _, b := range r.BlockTimes[r.Next:] {
		t += b
	}
	return t
}

// PlannedMs returns the total planned execution time (all blocks).
func (r *Request) PlannedMs() float64 {
	var t float64
	for _, b := range r.BlockTimes {
		t += b
	}
	return t
}

// Finished reports whether every block has been committed.
func (r *Request) Finished() bool { return r.Next >= len(r.BlockTimes) }

// TargetMs returns the latency target α·t_ext (§3.4 footnote 3), honoring
// the request's AlphaOverride when set.
func (r *Request) TargetMs(alpha float64) float64 {
	if r.AlphaOverride > 0 {
		alpha = r.AlphaOverride
	}
	return alpha * r.ExtMs
}

// SetDeadline derives the absolute deadline from the latency target:
// ArriveMs + α·t_ext (honoring AlphaOverride). A request that completes at
// its deadline has RR exactly α, so "expired" and "target blown" coincide.
func (r *Request) SetDeadline(alpha float64) {
	r.DeadlineMs = r.ArriveMs + r.TargetMs(alpha)
}

// Expired reports whether the deadline has passed at nowMs.
func (r *Request) Expired(nowMs float64) bool {
	return r.DeadlineMs > 0 && nowMs > r.DeadlineMs
}

// Doomed reports whether the request can no longer finish by its deadline
// even if granted the device immediately and uninterrupted: the predictive
// shedding predicate (expired requests are trivially doomed).
func (r *Request) Doomed(nowMs float64) bool {
	return r.DeadlineMs > 0 && nowMs+r.RemainingMs() > r.DeadlineMs
}

// E2EMs returns the end-to-end latency; it panics if the request is not
// complete, which indicates a harness bug.
func (r *Request) E2EMs() float64 {
	if r.DoneMs < 0 {
		panic(fmt.Sprintf("sched: request %d not complete", r.ID))
	}
	return r.DoneMs - r.ArriveMs
}

// ResponseRatio returns RR = t_ete / t_ext (Eq. 3) for a completed request.
func (r *Request) ResponseRatio() float64 {
	return r.E2EMs() / r.ExtMs
}

// PredictedRR returns the response ratio the request would reach if it had
// to wait `waitingMs` more before running its remaining blocks to
// completion, normalized by the latency target α·Ext — the quantity
// Algorithm 1's ResponseRatio function computes:
//
//	(l_waited + l_waiting + Ext_left) / (α · Ext)
//
// where l_waited is the time already spent since arrival.
func (r *Request) PredictedRR(nowMs, waitingMs, alpha float64) float64 {
	waited := nowMs - r.ArriveMs
	return (waited + waitingMs + r.RemainingMs()) / r.TargetMs(alpha)
}

// PredictedPlainRR is PredictedRR normalized by t_ext instead of the target:
// the same units as ResponseRatio and the Figure 6 α axis.
func (r *Request) PredictedPlainRR(nowMs, waitingMs float64) float64 {
	waited := nowMs - r.ArriveMs
	return (waited + waitingMs + r.RemainingMs()) / r.ExtMs
}

// Queue is the waiting-request queue ordered by execution priority:
// element 0 runs next. The currently executing block's request is *not* in
// the queue; it is re-inserted at each block boundary, which is exactly how
// SPLIT realizes block-granularity preemption.
type Queue struct {
	// Alpha is the latency-target multiplier used in response ratios.
	Alpha float64
	// StarveGuardRR is an extension beyond the paper: Algorithm 1's
	// shortest-first tendency can starve long requests under sustained
	// short-request pressure. When > 0, a waiting request whose predicted
	// plain response ratio (t_ete/t_ext if it ran immediately; the Figure 6
	// α axis units) already reaches this value becomes an insertion barrier
	// that later arrivals cannot bubble past. 0 (the paper's behaviour)
	// disables the guard.
	StarveGuardRR float64
	// Sink, when non-nil, receives a trace.Enqueue event for every greedy
	// insertion (initial arrivals and block-boundary re-inserts alike) with
	// the chosen position and queue depth — the live counterpart of
	// InsertGreedyExplain's offline decision trace. The queue never emits
	// on the hot path when Sink is nil, preserving the zero-cost default.
	Sink trace.Sink
	reqs []*Request
	// popped counts PopFront reslices since the backing array was last
	// reallocated: each one strands a dead slot ahead of the slice pointer
	// that the GC cannot reclaim until the whole array is dropped, so the
	// queue compacts once the dead region dominates the live one.
	popped int
}

// compactMinPops is the dead-slot threshold below which PopFront never
// compacts: small queues churn through their backing array fast enough
// that copying would cost more than the few stranded slots.
const compactMinPops = 32

// NewQueue creates an empty queue with the given α.
func NewQueue(alpha float64) *Queue {
	return &Queue{Alpha: alpha}
}

// Len returns the number of waiting requests.
func (q *Queue) Len() int { return len(q.reqs) }

// At returns the i-th waiting request (0 = next to run).
func (q *Queue) At(i int) *Request { return q.reqs[i] }

// Requests returns the internal order; callers must not mutate it.
func (q *Queue) Requests() []*Request { return q.reqs }

// PopFront removes and returns the next request to run, or nil when empty.
// The popped slot is nilled (so the backing array never retains the
// request) and the backing array is reallocated once the dead head region
// it strands outgrows the live queue — without both, sustained traffic
// retains every popped *Request and grows the head region without bound.
//
//lint:hotpath every device grant starts by popping the queue front
func (q *Queue) PopFront() *Request {
	if len(q.reqs) == 0 {
		return nil
	}
	r := q.reqs[0]
	q.reqs[0] = nil
	q.reqs = q.reqs[1:]
	q.popped++
	if q.popped >= compactMinPops && q.popped > len(q.reqs) {
		//lint:ignore hotalloc compaction is the amortized anti-leak reallocation: at most one make per len(queue) pops
		q.compact()
	}
	return r
}

// compact moves the live requests onto a fresh backing array, releasing
// the dead head slots stranded by PopFront reslices.
func (q *Queue) compact() {
	fresh := make([]*Request, len(q.reqs))
	copy(fresh, q.reqs)
	q.reqs = fresh
	q.popped = 0
}

// clearTail nils the backing-array slots from index `from` up to the
// current length. Every path that shrinks the queue by shifting survivors
// forward (Remove, SweepExpired) must run it before reslicing: a vacated
// tail slot still referencing a departed request is the same pointer-leak
// class as the PopFront slot retention fixed in the lifecycle-hardening
// pass, and FuzzQueueLifecycle asserts the whole [len, cap) region stays
// nil after every operation.
func (q *Queue) clearTail(from int) {
	for i := from; i < len(q.reqs); i++ {
		q.reqs[i] = nil
	}
}

// Remove extracts the waiting request with the given ID, preserving the
// order of the survivors, and returns it — or nil if no such request is
// waiting. This is the queued-work half of cancellation; the in-flight
// request is not in the queue and must be handled by its executor.
func (q *Queue) Remove(id int) *Request {
	for i, r := range q.reqs {
		if r.ID == id {
			copy(q.reqs[i:], q.reqs[i+1:])
			q.clearTail(len(q.reqs) - 1)
			q.reqs = q.reqs[:len(q.reqs)-1]
			return r
		}
	}
	return nil
}

// SweepExpired removes and returns every waiting request whose deadline
// has passed at nowMs — and, when predictive is true, every request that
// can no longer finish by its deadline even if granted the device
// immediately (Doomed) — preserving the queue order of both the shed
// requests and the survivors. Callers run it at block boundaries, before
// the token is granted, so a doomed request never occupies the device.
func (q *Queue) SweepExpired(nowMs float64, predictive bool) []*Request {
	var shed []*Request
	keep := q.reqs[:0]
	for _, r := range q.reqs {
		expired := r.Expired(nowMs) || (predictive && r.Doomed(nowMs))
		if expired {
			shed = append(shed, r)
		} else {
			keep = append(keep, r)
		}
	}
	q.clearTail(len(keep))
	q.reqs = keep
	return shed
}

// PushBack appends r without any preemption logic (FIFO insertion).
func (q *Queue) PushBack(r *Request) {
	q.reqs = append(q.reqs, r)
}

// SameTypeCount returns how many waiting requests share the model name.
func (q *Queue) SameTypeCount(modelName string) int {
	n := 0
	for _, r := range q.reqs {
		if r.Model == modelName {
			n++
		}
	}
	return n
}

// TotalRemainingMs returns the summed remaining work of all waiting
// requests (the l_waiting a new back-of-queue request would see).
func (q *Queue) TotalRemainingMs() float64 {
	var t float64
	for _, r := range q.reqs {
		t += r.RemainingMs()
	}
	return t
}

// InsertGreedy places r using Algorithm 1: starting from the back of the
// queue, r bubbles forward past its neighbor while doing so strictly lowers
// the summed predicted response ratio of the pair, and stops when
//
//   - no requests are ahead (r reached the front),
//   - the neighbor is an earlier arrival from the same task (FIFO rule), or
//   - exchanging would not reduce the pair's combined response ratio.
//
// For the pair (ahead=a, behind=b) with remaining times E and targets T, the
// swap condition reduces to E_b·T_b < E_a·T_a independent of the waiting
// time ahead of the pair and of the time each has already waited (both
// cancel in the difference of summed ratios), so the scan needs no clock —
// matching the paper's O(n) worst case with an O(k) average when the queue
// is already mostly ordered.
//
// The FIFO rule is keyed on arrival order, not bare type equality: a
// partially-executed request that re-enters the queue at a block boundary
// must still precede same-task requests that arrived after it. That
// constraint is hard — the scan starts at the FIFO ceiling rather than the
// back of the queue, so a rejected greedy swap or a starve-guard barrier
// between them can never strand r behind a later same-task arrival.
//
// nowMs is retained in the signature because the same entry point serves the
// instrumented variant (InsertGreedyExplain) and real-time callers that log
// predicted ratios at decision time. It returns the chosen position
// (0 = front).
//
//lint:hotpath Algorithm 1 runs on every arrival and every block-boundary re-insertion
func (q *Queue) InsertGreedy(nowMs float64, r *Request) int {
	pos := q.fifoCeiling(r)
	for pos > 0 {
		ahead := q.reqs[pos-1]
		if ahead.Model == r.Model {
			if ahead.ArriveMs <= r.ArriveMs {
				break // FIFO among same-task requests
			}
			pos-- // we arrived earlier: FIFO moves us ahead unconditionally
			continue
		}
		if q.StarveGuardRR > 0 && ahead.PredictedPlainRR(nowMs, 0) >= q.StarveGuardRR {
			break // starving request: nothing may pass it (extension)
		}
		if !swapBeneficial(ahead, r, q.Alpha) {
			break
		}
		pos--
	}
	q.insertAt(pos, r)
	//lint:ignore hotalloc emitEnqueue only allocates when a live sink is attached; nil-guarded inside
	q.emitEnqueue(nowMs, r, pos)
	return pos
}

// emitEnqueue reports an insertion decision to the attached live sink.
func (q *Queue) emitEnqueue(nowMs float64, r *Request, pos int) {
	if q.Sink == nil {
		return
	}
	q.Sink.Emit(trace.Event{
		AtMs:   nowMs,
		Kind:   trace.Enqueue,
		ReqID:  r.ID,
		Model:  r.Model,
		Block:  r.Next,
		Detail: fmt.Sprintf("pos=%d depth=%d", pos, len(q.reqs)),
	})
}

// fifoCeiling returns the highest insertion index that keeps r ahead of
// every same-task request that arrived after it. For fresh arrivals this is
// the queue length (no constraint); for block-boundary re-inserts it caps
// the start of the bubbling scan, because the FIFO rule is a hard
// constraint while the greedy comparison and the starve guard are only
// ordering preferences. Same-task requests already in the queue are in
// arrival order, so everything skipped over by the cap is either from
// another task or a same-task later arrival — never a same-task earlier
// arrival that FIFO would forbid passing.
func (q *Queue) fifoCeiling(r *Request) int {
	for i, ahead := range q.reqs {
		if ahead.Model == r.Model && ahead.ArriveMs > r.ArriveMs {
			return i
		}
	}
	return len(q.reqs)
}

// swapBeneficial reports whether moving `behind` ahead of `ahead` strictly
// lowers RR(ahead)+RR(behind). Derivation: with W the waiting time before
// the pair and D_x = now - arrive_x,
//
//	order (a,b): RR_a = (D_a+W+E_a)/T_a, RR_b = (D_b+W+E_a+E_b)/T_b
//	order (b,a): RR'_b = (D_b+W+E_b)/T_b, RR'_a = (D_a+W+E_b+E_a)/T_a
//	(RR'_a+RR'_b) - (RR_a+RR_b) = E_b/T_a - E_a/T_b
//
// so the swap helps iff E_b·T_b < E_a·T_a (multiply through by T_a·T_b>0).
func swapBeneficial(ahead, behind *Request, alpha float64) bool {
	ea, eb := ahead.RemainingMs(), behind.RemainingMs()
	ta, tb := ahead.TargetMs(alpha), behind.TargetMs(alpha)
	return eb*tb < ea*ta
}

// insertAt inserts r at index pos.
func (q *Queue) insertAt(pos int, r *Request) {
	q.reqs = append(q.reqs, nil)
	copy(q.reqs[pos+1:], q.reqs[pos:])
	q.reqs[pos] = r
}

// Decision records one neighbor comparison made by Algorithm 1, for tracing
// and for the microbenchmark that validates the O(n)/O(k) claim.
type Decision struct {
	NeighborID    int
	NeighborModel string
	SameType      bool
	Beneficial    bool
	NewRRFront    float64
	NewRRBack     float64
}

// InsertGreedyExplain is InsertGreedy with a full decision trace: it returns
// the chosen position and the per-neighbor comparisons, including the
// predicted response ratios of the arriving request ahead/behind of each
// neighbor at time nowMs.
func (q *Queue) InsertGreedyExplain(nowMs float64, r *Request) (int, []Decision) {
	var decisions []Decision
	// Waiting time seen by r at its FIFO ceiling (the back of the queue for
	// fresh arrivals; possibly further forward for re-inserts).
	pos := q.fifoCeiling(r)
	waiting := 0.0
	for _, ahead := range q.reqs[:pos] {
		waiting += ahead.RemainingMs()
	}
	for pos > 0 {
		ahead := q.reqs[pos-1]
		d := Decision{
			NeighborID:    ahead.ID,
			NeighborModel: ahead.Model,
			SameType:      ahead.Model == r.Model,
			NewRRBack:     r.PredictedRR(nowMs, waiting, q.Alpha),
			NewRRFront:    r.PredictedRR(nowMs, waiting-ahead.RemainingMs(), q.Alpha),
		}
		switch {
		case d.SameType:
			d.Beneficial = ahead.ArriveMs > r.ArriveMs // FIFO order decides
		case q.StarveGuardRR > 0 && ahead.PredictedPlainRR(nowMs, 0) >= q.StarveGuardRR:
			d.Beneficial = false // starving request: barrier (extension)
		default:
			d.Beneficial = swapBeneficial(ahead, r, q.Alpha)
		}
		decisions = append(decisions, d)
		if !d.Beneficial {
			break
		}
		waiting -= ahead.RemainingMs()
		pos--
	}
	q.insertAt(pos, r)
	q.emitEnqueue(nowMs, r, pos)
	return pos, decisions
}

// Elastic implements §3.3's elastic model splitting: under particularly
// high request density, or when many requests of the same type are queued,
// splitting is temporarily disabled to avoid the splitting overhead.
type Elastic struct {
	// Enabled turns the mechanism on. When false, ShouldSplit always
	// returns true.
	Enabled bool
	// HighLoadQueueLen disables splitting when at least this many requests
	// are waiting (request density too high). <=0 disables this trigger.
	HighLoadQueueLen int
	// SameTypeLimit disables splitting for a request when at least this
	// many waiting requests share its model (same-type FIFO makes splitting
	// useless among them). <=0 disables this trigger.
	SameTypeLimit int
}

// DefaultElastic returns the thresholds used in the evaluation harness.
func DefaultElastic() Elastic {
	return Elastic{Enabled: true, HighLoadQueueLen: 10, SameTypeLimit: 3}
}

// ShouldSplit decides whether an arriving request of the given model should
// use its split plan, based on the waiting queue alone. Executors that know
// which request currently occupies the device should call ShouldSplitWith
// instead, which counts it into the same-type run.
func (e Elastic) ShouldSplit(q *Queue, modelName string) bool {
	return e.ShouldSplitWith(q, modelName, nil)
}

// ShouldSplitWith is ShouldSplit with the device's in-flight request made
// visible. The §3.3 same-type trigger reasons about the same-type run the
// arrival would join, and on a busy device that run usually starts with the
// request holding the device — it left the queue when it was granted, so
// counting only waiting requests under-counts the run by exactly one. The
// observable off-by-one: a same-type burst needed SameTypeLimit+1 pending
// requests (not SameTypeLimit) before splitting was suppressed, and the
// simulator and the serving path could disagree at the boundary depending
// on whether the run's head sat in the queue or in flight when the arrival
// was processed. Passing the in-flight request restores "at least
// SameTypeLimit same-type requests pending on this device" on both sides.
//
// The high-load trigger deliberately stays queue-only: it measures request
// density — how many are waiting — not the run structure, and widening it
// would change the §3.3 threshold semantics the tests pin.
func (e Elastic) ShouldSplitWith(q *Queue, modelName string, inflight *Request) bool {
	if !e.Enabled {
		return true
	}
	if e.HighLoadQueueLen > 0 && q.Len() >= e.HighLoadQueueLen {
		return false
	}
	if e.SameTypeLimit > 0 {
		run := q.SameTypeCount(modelName)
		if inflight != nil && inflight.Model == modelName {
			run++
		}
		if run >= e.SameTypeLimit {
			return false
		}
	}
	return true
}
