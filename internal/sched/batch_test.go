package sched

import (
	"testing"

	"split/internal/model"
)

// mkReq builds a queued-style request with n equal blocks.
func mkReq(id int, modelName string, arriveMs float64, nblocks int, blockMs float64) *Request {
	bt := make([]float64, nblocks)
	for i := range bt {
		bt[i] = blockMs
	}
	return NewRequest(id, modelName, model.Short, arriveMs, blockMs*float64(nblocks), bt)
}

func TestBatchPlannerDisabled(t *testing.T) {
	for _, max := range []int{-1, 0, 1} {
		q := NewQueue(4)
		q.PushBack(mkReq(1, "m", 0, 2, 10))
		q.PushBack(mkReq(2, "m", 1, 2, 10))
		head := mkReq(0, "m", 0, 2, 10)
		batch := BatchPlanner{Max: max}.Form(q, head, 5)
		if len(batch) != 1 || batch[0] != head {
			t.Fatalf("Max=%d: batch = %d members, want just the head", max, len(batch))
		}
		if q.Len() != 2 {
			t.Fatalf("Max=%d: disabled planner mutated the queue (len %d)", max, q.Len())
		}
		if (BatchPlanner{Max: max}).Enabled() {
			t.Fatalf("Max=%d reports Enabled", max)
		}
	}
}

func TestBatchPlannerFormsSameTypeRun(t *testing.T) {
	q := NewQueue(4)
	q.PushBack(mkReq(1, "m", 1, 2, 10))
	q.PushBack(mkReq(2, "m", 2, 2, 10))
	q.PushBack(mkReq(3, "m", 3, 2, 10))
	q.PushBack(mkReq(4, "other", 4, 2, 10))
	q.PushBack(mkReq(5, "m", 5, 2, 10)) // behind "other": must not batch past it
	head := mkReq(0, "m", 0, 2, 10)

	batch := BatchPlanner{Max: 3}.Form(q, head, 6)
	ids := make([]int, len(batch))
	for i, m := range batch {
		ids[i] = m.ID
	}
	if len(batch) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("batch ids = %v, want [0 1 2] (Max-capped FIFO prefix)", ids)
	}
	if q.Len() != 3 || q.At(0).ID != 3 {
		t.Fatalf("queue after formation: len=%d front=%d, want 3 requests led by id 3", q.Len(), q.At(0).ID)
	}
}

func TestBatchPlannerStopsAtBoundaryMismatch(t *testing.T) {
	q := NewQueue(4)
	ahead := mkReq(1, "m", 1, 2, 10)
	ahead.Next = 1 // re-inserted at a different block boundary
	q.PushBack(ahead)
	q.PushBack(mkReq(2, "m", 2, 2, 10))
	head := mkReq(0, "m", 0, 2, 10)
	if batch := (BatchPlanner{Max: 4}).Form(q, head, 3); len(batch) != 1 {
		t.Fatalf("batched across a block-index mismatch: %d members", len(batch))
	}

	// An elastic-suppressed unsplit neighbor (1 block) must not join a
	// split head (2 blocks) even at the same index.
	q2 := NewQueue(4)
	q2.PushBack(mkReq(3, "m", 1, 1, 20))
	if batch := (BatchPlanner{Max: 4}).Form(q2, head, 3); len(batch) != 1 {
		t.Fatalf("batched a split head with an unsplit member: %d members", len(batch))
	}
}

func TestBatchPlannerNeverSpansDoomedOrCanceled(t *testing.T) {
	now := 100.0
	q := NewQueue(4)
	doomed := mkReq(1, "m", 1, 2, 10)
	doomed.DeadlineMs = now + 5 // needs 20ms, 5 left: doomed but not expired
	q.PushBack(doomed)
	q.PushBack(mkReq(2, "m", 2, 2, 10))
	head := mkReq(0, "m", 0, 2, 10)
	if batch := (BatchPlanner{Max: 4}).Form(q, head, now); len(batch) != 1 {
		t.Fatalf("batch spans a doomed request: %d members", len(batch))
	}

	q2 := NewQueue(4)
	canceled := mkReq(3, "m", 1, 2, 10)
	canceled.Canceled = true
	q2.PushBack(canceled)
	q2.PushBack(mkReq(4, "m", 2, 2, 10))
	if batch := (BatchPlanner{Max: 4}).Form(q2, head, now); len(batch) != 1 {
		t.Fatalf("batch spans a canceled request: %d members", len(batch))
	}

	// A doomed head never drags healthy work into its grant.
	q3 := NewQueue(4)
	q3.PushBack(mkReq(5, "m", 1, 2, 10))
	badHead := mkReq(6, "m", 0, 2, 10)
	badHead.DeadlineMs = now + 5
	if batch := (BatchPlanner{Max: 4}).Form(q3, badHead, now); len(batch) != 1 {
		t.Fatalf("doomed head formed a batch: %d members", len(batch))
	}
}

// TestElasticInflightBoundary pins the fixed §3.3 same-type threshold
// semantics: the run the arrival joins includes the request occupying the
// device, so suppression starts when queued + in-flight same-type requests
// reach SameTypeLimit — exactly at the limit, not one past it.
func TestElasticInflightBoundary(t *testing.T) {
	e := Elastic{Enabled: true, SameTypeLimit: 3}

	q := NewQueue(4)
	q.PushBack(mkReq(1, "m", 1, 2, 10))
	q.PushBack(mkReq(2, "m", 2, 2, 10))
	inflight := mkReq(0, "m", 0, 2, 10)

	// 2 queued + 1 in flight = run of 3 = limit: suppress.
	if e.ShouldSplitWith(q, "m", inflight) {
		t.Error("run of SameTypeLimit (with in-flight head) not suppressed")
	}
	// The queue-only view sees 2 < 3: this is the off-by-one the fix
	// closes, and ShouldSplit (no in-flight knowledge) still reports it.
	if !e.ShouldSplit(q, "m") {
		t.Error("queue-only view should not suppress at 2 of 3")
	}
	// A different-model in-flight request is not part of the run.
	if !e.ShouldSplitWith(q, "m", mkReq(9, "other", 0, 2, 10)) {
		t.Error("different-model in-flight request counted into the run")
	}
	// One under the limit stays unsuppressed even with the in-flight count.
	q2 := NewQueue(4)
	q2.PushBack(mkReq(1, "m", 1, 2, 10))
	if !e.ShouldSplitWith(q2, "m", inflight) {
		t.Error("run of SameTypeLimit-1 suppressed")
	}
	// An idle device (nil in-flight) degrades to the queue-only count:
	// 2 queued < 3, so splitting stays on.
	if !e.ShouldSplitWith(q, "m", nil) {
		t.Error("nil in-flight should match the queue-only ShouldSplit decision")
	}
}

func TestElasticInflightHighLoadUnchanged(t *testing.T) {
	// The high-load trigger measures queue density only: an in-flight
	// request must not tip it.
	e := Elastic{Enabled: true, HighLoadQueueLen: 2}
	q := NewQueue(4)
	q.PushBack(mkReq(1, "a", 1, 2, 10))
	if !e.ShouldSplitWith(q, "b", mkReq(0, "c", 0, 2, 10)) {
		t.Error("in-flight request counted into the high-load queue length")
	}
	q.PushBack(mkReq(2, "b", 2, 2, 10))
	if e.ShouldSplitWith(q, "b", nil) {
		t.Error("high-load trigger lost")
	}
}
