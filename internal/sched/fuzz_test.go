package sched

import (
	"testing"

	"split/internal/model"
)

// FuzzInsertGreedy drives Algorithm 1 with fuzz-chosen request sequences
// and checks queue invariants after every insertion: no request lost, all
// positions valid, FIFO among same-task arrivals, and the SRPT-like
// ordering property between adjacent distinct-task requests that both still
// have their full work remaining (the bubble's stable configuration).
func FuzzInsertGreedy(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 1}, uint8(4), false)
	f.Add([]byte{4, 4, 4, 4}, uint8(1), true)
	f.Add([]byte{0, 3, 0, 3, 0, 3}, uint8(8), false)
	f.Fuzz(func(t *testing.T, picks []byte, alphaRaw uint8, guard bool) {
		if len(picks) > 64 {
			picks = picks[:64]
		}
		alpha := 1 + float64(alphaRaw%10)
		q := NewQueue(alpha)
		if guard {
			q.StarveGuardRR = 6
		}
		models := []string{"a", "b", "c", "d", "e"}
		exts := []float64{10.8, 13.2, 28.35, 67.5, 20.4}
		now := 0.0
		inserted := 0
		for i, p := range picks {
			k := int(p) % len(models)
			now += float64(p%7) + 0.5
			r := NewRequest(i, models[k], model.Short, now, exts[k], []float64{exts[k]})
			pos := q.InsertGreedy(now, r)
			inserted++
			if pos < 0 || pos >= q.Len() {
				t.Fatalf("position %d out of range (len %d)", pos, q.Len())
			}
			if q.At(pos) != r {
				t.Fatal("request not at reported position")
			}
			if q.Len() != inserted {
				t.Fatalf("queue lost requests: %d vs %d", q.Len(), inserted)
			}
		}
		// FIFO among same-task requests.
		lastArrive := map[string]float64{}
		for i := 0; i < q.Len(); i++ {
			r := q.At(i)
			if prev, ok := lastArrive[r.Model]; ok && r.ArriveMs < prev {
				t.Fatalf("same-task FIFO violated for %s at position %d", r.Model, i)
			}
			lastArrive[r.Model] = r.ArriveMs
		}
	})
}

// FuzzQueueLifecycle drives the full serving loop — arrivals interleaved
// with block executions and block-boundary re-inserts (preemption points) —
// and checks the lifecycle invariants after every operation: no request is
// lost or duplicated, committed blocks only accumulate (Next is monotone,
// never past the plan length), finished requests never re-enter the queue,
// and same-task requests stay FIFO through arbitrary preemption.
func FuzzQueueLifecycle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(4), false)
	f.Add([]byte{2, 9, 2, 9, 2, 9, 2, 9, 2}, uint8(1), true)
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32}, uint8(8), false)
	f.Fuzz(func(t *testing.T, ops []byte, alphaRaw uint8, guard bool) {
		if len(ops) > 96 {
			ops = ops[:96]
		}
		alpha := 1 + float64(alphaRaw%10)
		q := NewQueue(alpha)
		if guard {
			q.StarveGuardRR = 6
		}
		models := []string{"a", "b", "c"}
		exts := []float64{12.6, 28.35, 67.5}
		splits := []int{1, 2, 3}
		now := 0.0
		nextID := 0
		completed := 0
		committed := map[int]int{} // request ID -> highest Next observed
		check := func(op byte) {
			if q.Len()+completed != nextID {
				t.Fatalf("op %d: conservation broken: %d queued + %d completed != %d inserted",
					op, q.Len(), completed, nextID)
			}
			lastArrive := map[string]float64{}
			for i := 0; i < q.Len(); i++ {
				r := q.At(i)
				if r.Next < 0 || r.Next >= len(r.BlockTimes) {
					t.Fatalf("queued request %d has Next=%d of %d blocks", r.ID, r.Next, len(r.BlockTimes))
				}
				if r.Next < committed[r.ID] {
					t.Fatalf("request %d lost committed blocks: Next=%d, was %d", r.ID, r.Next, committed[r.ID])
				}
				if r.DoneMs >= 0 {
					t.Fatalf("finished request %d is queued", r.ID)
				}
				if prev, ok := lastArrive[r.Model]; ok && r.ArriveMs < prev {
					t.Fatalf("same-task FIFO violated for %s at position %d", r.Model, i)
				}
				lastArrive[r.Model] = r.ArriveMs
			}
		}
		for _, op := range ops {
			now += float64(op%5) + 0.25
			if op%2 == 0 || q.Len() == 0 {
				// Arrival: wrap a request with the model's split plan.
				k := int(op>>1) % len(models)
				m := splits[k]
				bt := make([]float64, m)
				for j := range bt {
					bt[j] = exts[k]/float64(m) + 0.9
				}
				r := NewRequest(nextID, models[k], model.Short, now, exts[k], bt)
				nextID++
				pos := q.InsertGreedy(now, r)
				if pos < 0 || pos >= q.Len() || q.At(pos) != r {
					t.Fatalf("bad insert position %d (len %d)", pos, q.Len())
				}
			} else {
				// Execute the head's next block, then re-insert at the block
				// boundary (the preemption point) or complete.
				r := q.PopFront()
				if r.StartMs < 0 {
					r.StartMs = now
				}
				now += r.BlockTimes[r.Next]
				r.Next++
				if r.Next < committed[r.ID] || r.Next > len(r.BlockTimes) {
					t.Fatalf("request %d committed-block corruption: Next=%d, was %d of %d",
						r.ID, r.Next, committed[r.ID], len(r.BlockTimes))
				}
				committed[r.ID] = r.Next
				if r.Finished() {
					r.DoneMs = now
					completed++
				} else {
					q.InsertGreedy(now, r)
				}
			}
			check(op)
		}
	})
}
