package sched

import (
	"testing"

	"split/internal/model"
)

// assertNoLeakedSlots fails if any backing-array slot beyond the queue's
// live window still references a request. Every shrink path — PopFront,
// Remove, SweepExpired, compact — must nil the slots it vacates, or the
// array retains departed *Requests until it is reallocated (the
// slot-retention leak class).
func assertNoLeakedSlots(t *testing.T, q *Queue) {
	t.Helper()
	tail := q.reqs[len(q.reqs):cap(q.reqs)]
	for i, r := range tail {
		if r != nil {
			t.Fatalf("freed slot %d (past live length %d) retains request %d",
				q.Len()+i, q.Len(), r.ID)
		}
	}
}

// FuzzInsertGreedy drives Algorithm 1 with fuzz-chosen request sequences
// and checks queue invariants after every insertion: no request lost, all
// positions valid, FIFO among same-task arrivals, and the SRPT-like
// ordering property between adjacent distinct-task requests that both still
// have their full work remaining (the bubble's stable configuration).
func FuzzInsertGreedy(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 1}, uint8(4), false)
	f.Add([]byte{4, 4, 4, 4}, uint8(1), true)
	f.Add([]byte{0, 3, 0, 3, 0, 3}, uint8(8), false)
	f.Fuzz(func(t *testing.T, picks []byte, alphaRaw uint8, guard bool) {
		if len(picks) > 64 {
			picks = picks[:64]
		}
		alpha := 1 + float64(alphaRaw%10)
		q := NewQueue(alpha)
		if guard {
			q.StarveGuardRR = 6
		}
		models := []string{"a", "b", "c", "d", "e"}
		exts := []float64{10.8, 13.2, 28.35, 67.5, 20.4}
		now := 0.0
		inserted := 0
		for i, p := range picks {
			k := int(p) % len(models)
			now += float64(p%7) + 0.5
			r := NewRequest(i, models[k], model.Short, now, exts[k], []float64{exts[k]})
			pos := q.InsertGreedy(now, r)
			inserted++
			if pos < 0 || pos >= q.Len() {
				t.Fatalf("position %d out of range (len %d)", pos, q.Len())
			}
			if q.At(pos) != r {
				t.Fatal("request not at reported position")
			}
			if q.Len() != inserted {
				t.Fatalf("queue lost requests: %d vs %d", q.Len(), inserted)
			}
		}
		// FIFO among same-task requests.
		lastArrive := map[string]float64{}
		for i := 0; i < q.Len(); i++ {
			r := q.At(i)
			if prev, ok := lastArrive[r.Model]; ok && r.ArriveMs < prev {
				t.Fatalf("same-task FIFO violated for %s at position %d", r.Model, i)
			}
			lastArrive[r.Model] = r.ArriveMs
		}
	})
}

// FuzzQueueLifecycle drives the full serving loop — arrivals (some with
// deadlines) interleaved with block executions, block-boundary re-inserts
// (preemption points), expiry sweeps, and cancellations — and checks the
// lifecycle invariants after every operation: no request is lost or
// duplicated (queued + completed + shed + canceled = inserted), committed
// blocks only accumulate (Next is monotone, never past the plan length),
// finished requests never re-enter the queue, a shed or canceled request
// never runs another block, and same-task requests stay FIFO through
// arbitrary preemption.
func FuzzQueueLifecycle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(4), false)
	f.Add([]byte{2, 9, 2, 9, 2, 9, 2, 9, 2}, uint8(1), true)
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32}, uint8(8), false)
	// Shutdown-race schedule: a burst of deadline-carrying arrivals, one
	// block executed, then a storm of sweeps and cancellations against the
	// half-drained queue — the drain-under-load interleaving.
	f.Add([]byte{6, 0, 12, 3, 7, 11, 31, 15, 3, 23, 7, 31}, uint8(2), false)
	f.Fuzz(func(t *testing.T, ops []byte, alphaRaw uint8, guard bool) {
		if len(ops) > 96 {
			ops = ops[:96]
		}
		alpha := 1 + float64(alphaRaw%10)
		q := NewQueue(alpha)
		if guard {
			q.StarveGuardRR = 6
		}
		models := []string{"a", "b", "c"}
		exts := []float64{12.6, 28.35, 67.5}
		splits := []int{1, 2, 3}
		now := 0.0
		nextID := 0
		completed := 0
		terminated := map[int]bool{} // shed or canceled: must never run again
		committed := map[int]int{}   // request ID -> highest Next observed
		check := func(op byte) {
			if q.Len()+completed+len(terminated) != nextID {
				t.Fatalf("op %d: conservation broken: %d queued + %d completed + %d terminated != %d inserted",
					op, q.Len(), completed, len(terminated), nextID)
			}
			lastArrive := map[string]float64{}
			for i := 0; i < q.Len(); i++ {
				r := q.At(i)
				if r.Next < 0 || r.Next >= len(r.BlockTimes) {
					t.Fatalf("queued request %d has Next=%d of %d blocks", r.ID, r.Next, len(r.BlockTimes))
				}
				if r.Next < committed[r.ID] {
					t.Fatalf("request %d lost committed blocks: Next=%d, was %d", r.ID, r.Next, committed[r.ID])
				}
				if r.DoneMs >= 0 {
					t.Fatalf("finished request %d is queued", r.ID)
				}
				if terminated[r.ID] {
					t.Fatalf("shed/canceled request %d is queued", r.ID)
				}
				if prev, ok := lastArrive[r.Model]; ok && r.ArriveMs < prev {
					t.Fatalf("same-task FIFO violated for %s at position %d", r.Model, i)
				}
				lastArrive[r.Model] = r.ArriveMs
			}
			assertNoLeakedSlots(t, q)
		}
		for _, op := range ops {
			now += float64(op%5) + 0.25
			switch {
			case op%4 <= 1 || q.Len() == 0:
				// Arrival: wrap a request with the model's split plan;
				// every third one carries a deadline derived from op.
				k := int(op>>2) % len(models)
				m := splits[k]
				bt := make([]float64, m)
				for j := range bt {
					bt[j] = exts[k]/float64(m) + 0.9
				}
				r := NewRequest(nextID, models[k], model.Short, now, exts[k], bt)
				if op%3 == 0 {
					r.DeadlineMs = now + float64(op%32) + 0.5
				}
				nextID++
				pos := q.InsertGreedy(now, r)
				if pos < 0 || pos >= q.Len() || q.At(pos) != r {
					t.Fatalf("bad insert position %d (len %d)", pos, q.Len())
				}
			case op%4 == 2:
				// Block boundary: sweep doomed work (the executor's
				// pre-grant shed), then run the head's next block and
				// re-insert or complete.
				for _, ex := range q.SweepExpired(now, op%8 >= 4) {
					if ex.DeadlineMs <= 0 {
						t.Fatalf("swept request %d has no deadline", ex.ID)
					}
					if terminated[ex.ID] {
						t.Fatalf("request %d shed twice", ex.ID)
					}
					terminated[ex.ID] = true
				}
				r := q.PopFront()
				if r == nil {
					break
				}
				if terminated[r.ID] {
					t.Fatalf("shed/canceled request %d granted the device", r.ID)
				}
				if r.StartMs < 0 {
					r.StartMs = now
				}
				now += r.BlockTimes[r.Next]
				r.Next++
				if r.Next < committed[r.ID] || r.Next > len(r.BlockTimes) {
					t.Fatalf("request %d committed-block corruption: Next=%d, was %d of %d",
						r.ID, r.Next, committed[r.ID], len(r.BlockTimes))
				}
				committed[r.ID] = r.Next
				switch {
				case r.Canceled || (r.DeadlineMs > 0 && r.Expired(now)):
					// Boundary shed: the request must not re-enter the queue.
					terminated[r.ID] = true
				case r.Finished():
					r.DoneMs = now
					completed++
				default:
					q.InsertGreedy(now, r)
				}
			default:
				// Cancellation of an arbitrary known ID: queued work is
				// removed immediately, anything else is a no-op here (the
				// executor handles in-flight marks at boundaries).
				if nextID == 0 {
					break
				}
				id := int(op>>2) % nextID
				if r := q.Remove(id); r != nil {
					if terminated[id] {
						t.Fatalf("request %d was already terminated yet queued", id)
					}
					r.Canceled = true
					terminated[id] = true
				}
			}
			check(op)
		}
	})
}

// FuzzDeadlineSweep hammers SweepExpired directly with fuzz-chosen queues
// and sweep times: everything shed must actually be expired (or doomed,
// under predictive sweeps), everything kept must not be, and the survivors
// keep their relative order with no slot corruption.
func FuzzDeadlineSweep(f *testing.F) {
	f.Add([]byte{10, 200, 30, 0, 45}, uint8(50), false)
	f.Add([]byte{0, 0, 0, 0}, uint8(0), true)
	f.Add([]byte{255, 1, 254, 2, 253, 3}, uint8(128), true)
	f.Fuzz(func(t *testing.T, spec []byte, nowRaw uint8, predictive bool) {
		if len(spec) > 64 {
			spec = spec[:64]
		}
		q := NewQueue(4)
		var want []*Request
		for i, b := range spec {
			blocks := 1 + int(b)%3
			bt := make([]float64, blocks)
			for j := range bt {
				bt[j] = float64(b%40) + 1
			}
			r := NewRequest(i, "m", model.Short, 0, bt[0]*float64(blocks), bt)
			if b%2 == 1 { // odd bytes carry deadlines
				r.DeadlineMs = float64(b)
			}
			q.PushBack(r)
			want = append(want, r)
		}
		now := float64(nowRaw)
		shed := q.SweepExpired(now, predictive)
		expired := func(r *Request) bool {
			return r.Expired(now) || (predictive && r.Doomed(now))
		}
		for _, r := range shed {
			if !expired(r) {
				t.Fatalf("request %d shed while viable (deadline %v, now %v)", r.ID, r.DeadlineMs, now)
			}
		}
		if q.Len()+len(shed) != len(want) {
			t.Fatalf("sweep lost requests: %d kept + %d shed != %d", q.Len(), len(shed), len(want))
		}
		keep := 0
		for _, r := range want {
			if expired(r) {
				continue
			}
			if q.At(keep) != r {
				t.Fatalf("survivor order broken at %d", keep)
			}
			keep++
		}
		if keep != q.Len() {
			t.Fatalf("queue holds %d requests, want %d survivors", q.Len(), keep)
		}
		assertNoLeakedSlots(t, q)
	})
}

// FuzzBatchPlanner drives batch formation against fuzz-chosen queues and
// checks every formation invariant: the head leads, the batch never exceeds
// Max, all members share the head's model and next-block index with equally
// shaped plans (one block per member — a batch never crosses a block
// boundary mid-request), no member is canceled or deadline-doomed, members
// are exactly the contiguous queue-front prefix in queue order (FIFO), the
// survivors keep their order, and no backing slot leaks.
func FuzzBatchPlanner(f *testing.F) {
	f.Add([]byte{1, 1, 1, 1, 2, 3}, uint8(4), uint8(40))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(8), uint8(0))
	f.Add([]byte{5, 5, 10, 5, 35, 5, 7}, uint8(2), uint8(200))
	f.Add([]byte{9, 9, 9}, uint8(0), uint8(17))
	f.Fuzz(func(t *testing.T, spec []byte, maxRaw, nowRaw uint8) {
		if len(spec) > 64 {
			spec = spec[:64]
		}
		q := NewQueue(4)
		now := float64(nowRaw)
		for i, b := range spec {
			k := int(b) % 3
			nblocks := 1 + int(b>>3)%3
			bt := make([]float64, nblocks)
			for j := range bt {
				bt[j] = 10 + float64(k)
			}
			r := NewRequest(i, string(rune('a'+k)), model.Short, 0, 30, bt)
			r.Next = int(b>>5) % nblocks // partially executed re-inserts
			if b%5 == 0 {
				r.DeadlineMs = float64(b) + 0.5 // some doomed/expired at now
			}
			if b%7 == 0 {
				r.Canceled = true
			}
			q.PushBack(r)
		}
		head := q.PopFront()
		if head == nil {
			return
		}
		before := append([]*Request(nil), q.Requests()...)
		p := BatchPlanner{Max: int(maxRaw % 9)}
		batch := p.Form(q, head, now)

		if len(batch) == 0 || batch[0] != head {
			t.Fatal("head does not lead the batch")
		}
		limit := p.Max
		if limit < 1 {
			limit = 1
		}
		if len(batch) > limit {
			t.Fatalf("batch size %d exceeds Max %d", len(batch), p.Max)
		}
		if (head.Canceled || head.Doomed(now)) && len(batch) > 1 {
			t.Fatal("batch formed behind a canceled/doomed head")
		}
		for i, m := range batch[1:] {
			if m.Model != head.Model {
				t.Fatalf("member %d model %q != head %q", i, m.Model, head.Model)
			}
			if m.Next != head.Next || len(m.BlockTimes) != len(head.BlockTimes) {
				t.Fatalf("member %d at block %d/%d, head at %d/%d — batch crosses a block boundary",
					i, m.Next, len(m.BlockTimes), head.Next, len(head.BlockTimes))
			}
			if m.Canceled {
				t.Fatalf("member %d is canceled", i)
			}
			if m.Doomed(now) {
				t.Fatalf("member %d is doomed at %v (deadline %v)", i, now, m.DeadlineMs)
			}
			if before[i] != m {
				t.Fatalf("member %d is not the queue-front prefix (FIFO broken)", i)
			}
		}
		took := len(batch) - 1
		if q.Len() != len(before)-took {
			t.Fatalf("conservation broken: %d left + %d taken != %d", q.Len(), took, len(before))
		}
		for i := 0; i < q.Len(); i++ {
			if q.At(i) != before[took+i] {
				t.Fatalf("survivor order changed at %d", i)
			}
		}
		assertNoLeakedSlots(t, q)
	})
}
