package sched

import (
	"testing"

	"split/internal/model"
)

// FuzzInsertGreedy drives Algorithm 1 with fuzz-chosen request sequences
// and checks queue invariants after every insertion: no request lost, all
// positions valid, FIFO among same-task arrivals, and the SRPT-like
// ordering property between adjacent distinct-task requests that both still
// have their full work remaining (the bubble's stable configuration).
func FuzzInsertGreedy(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 1}, uint8(4), false)
	f.Add([]byte{4, 4, 4, 4}, uint8(1), true)
	f.Add([]byte{0, 3, 0, 3, 0, 3}, uint8(8), false)
	f.Fuzz(func(t *testing.T, picks []byte, alphaRaw uint8, guard bool) {
		if len(picks) > 64 {
			picks = picks[:64]
		}
		alpha := 1 + float64(alphaRaw%10)
		q := NewQueue(alpha)
		if guard {
			q.StarveGuardRR = 6
		}
		models := []string{"a", "b", "c", "d", "e"}
		exts := []float64{10.8, 13.2, 28.35, 67.5, 20.4}
		now := 0.0
		inserted := 0
		for i, p := range picks {
			k := int(p) % len(models)
			now += float64(p%7) + 0.5
			r := NewRequest(i, models[k], model.Short, now, exts[k], []float64{exts[k]})
			pos := q.InsertGreedy(now, r)
			inserted++
			if pos < 0 || pos >= q.Len() {
				t.Fatalf("position %d out of range (len %d)", pos, q.Len())
			}
			if q.At(pos) != r {
				t.Fatal("request not at reported position")
			}
			if q.Len() != inserted {
				t.Fatalf("queue lost requests: %d vs %d", q.Len(), inserted)
			}
		}
		// FIFO among same-task requests.
		lastArrive := map[string]float64{}
		for i := 0; i < q.Len(); i++ {
			r := q.At(i)
			if prev, ok := lastArrive[r.Model]; ok && r.ArriveMs < prev {
				t.Fatalf("same-task FIFO violated for %s at position %d", r.Model, i)
			}
			lastArrive[r.Model] = r.ArriveMs
		}
	})
}
