package sched

import (
	"testing"
)

func TestDeadlinePredicates(t *testing.T) {
	r := newReq(1, "m", 100, 30, 10, 10, 10)
	if r.Expired(1e9) || r.Doomed(1e9) {
		t.Error("request without a deadline expired")
	}
	r.SetDeadline(4) // deadline = 100 + 4*30 = 220
	if r.DeadlineMs != 220 {
		t.Fatalf("deadline = %v, want 220", r.DeadlineMs)
	}
	if r.Expired(220) {
		t.Error("expired exactly at the deadline")
	}
	if !r.Expired(220.001) {
		t.Error("not expired past the deadline")
	}
	// Doomed once now + remaining (30) > 220, i.e. now > 190.
	if r.Doomed(190) {
		t.Error("doomed while still feasible")
	}
	if !r.Doomed(190.001) {
		t.Error("not doomed when infeasible")
	}
	// Committed blocks shrink the remaining work and the doom horizon.
	r.Next = 2
	if r.Doomed(205) {
		t.Error("doomed with only one block left and 15 ms of slack")
	}

	// AlphaOverride flows into the deadline.
	o := newReq(2, "m", 0, 10)
	o.AlphaOverride = 2
	o.SetDeadline(4)
	if o.DeadlineMs != 20 {
		t.Errorf("override deadline = %v, want 20", o.DeadlineMs)
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue(4)
	a := newReq(1, "a", 0, 10)
	b := newReq(2, "b", 1, 20)
	c := newReq(3, "c", 2, 30)
	for _, r := range []*Request{a, b, c} {
		q.PushBack(r)
	}
	if got := q.Remove(99); got != nil {
		t.Errorf("removed unknown id: %+v", got)
	}
	if got := q.Remove(2); got != b {
		t.Fatalf("removed %+v, want request 2", got)
	}
	if q.Len() != 2 || q.At(0) != a || q.At(1) != c {
		t.Errorf("order after remove: %d requests", q.Len())
	}
	// The vacated tail slot must not retain the shifted pointer.
	if q.reqs[:3][2] != nil {
		t.Error("tail slot retains a request after Remove")
	}
}

func TestSweepExpired(t *testing.T) {
	q := NewQueue(4)
	mk := func(id int, deadlineMs float64, blocks ...float64) *Request {
		r := newReq(id, "m", 0, 10, blocks...)
		r.DeadlineMs = deadlineMs
		return r
	}
	fresh := mk(1, 0, 10)       // no deadline: never shed
	alive := mk(2, 100, 10)     // feasible
	expired := mk(3, 40, 10)    // already past at now=50
	doomed := mk(4, 55, 10, 10) // 50 + 20 remaining > 55
	for _, r := range []*Request{fresh, alive, expired, doomed} {
		q.PushBack(r)
	}

	shed := q.SweepExpired(50, false)
	if len(shed) != 1 || shed[0] != expired {
		t.Fatalf("non-predictive sweep shed %d requests", len(shed))
	}
	if q.Len() != 3 || q.At(0) != fresh || q.At(1) != alive || q.At(2) != doomed {
		t.Errorf("survivor order broken: len=%d", q.Len())
	}

	shed = q.SweepExpired(50, true)
	if len(shed) != 1 || shed[0] != doomed {
		t.Fatalf("predictive sweep shed %d requests", len(shed))
	}
	if q.Len() != 2 {
		t.Errorf("queue len after sweeps = %d, want 2", q.Len())
	}
	// Vacated tail slots must be nilled so shed requests are not retained.
	backing := q.reqs[:4]
	if backing[2] != nil || backing[3] != nil {
		t.Error("sweep left shed requests in the backing array")
	}
}

// TestPopFrontReleasesSlot pins the retention bugfix: the popped head slot
// must be nilled so the backing array no longer references the request.
func TestPopFrontReleasesSlot(t *testing.T) {
	q := NewQueue(4)
	q.PushBack(newReq(1, "a", 0, 10))
	q.PushBack(newReq(2, "b", 1, 10))
	backing := q.reqs // alias the backing array before popping
	if r := q.PopFront(); r == nil || r.ID != 1 {
		t.Fatalf("popped %+v", r)
	}
	if backing[0] != nil {
		t.Error("popped slot still references the request")
	}
	if backing[1] == nil {
		t.Error("live slot was cleared")
	}
}

// TestPopFrontCompacts pins head-capacity reclamation: sustained pops must
// eventually move the live requests to a fresh backing array instead of
// stranding an ever-growing dead head region.
func TestPopFrontCompacts(t *testing.T) {
	q := NewQueue(4)
	// A deep queue whose head is drained far below the threshold.
	for i := 0; i < 4*compactMinPops; i++ {
		q.PushBack(newReq(i, "m", float64(i), 10))
	}
	for q.Len() > compactMinPops/2 {
		if q.PopFront() == nil {
			t.Fatal("queue drained early")
		}
	}
	// The compaction invariant: the dead head region never dominates both
	// the threshold and the live queue.
	if q.popped >= compactMinPops && q.popped > q.Len() {
		t.Errorf("popped=%d with len=%d: compaction never ran", q.popped, q.Len())
	}
	// Everything still present and ordered.
	for i := 0; i < q.Len(); i++ {
		if q.At(i) == nil {
			t.Fatalf("nil request at %d after compaction", i)
		}
	}
}

// TestQueueSteadyStateAllocs bounds the per-operation allocations of a
// sustained push/pop cycle: the compaction heuristic must stay amortized,
// not copy on every pop.
func TestQueueSteadyStateAllocs(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 8; i++ {
		q.PushBack(newReq(i, "m", float64(i), 10))
	}
	id := 100
	avg := testing.AllocsPerRun(2000, func() {
		r := q.PopFront()
		r.ID = id
		r.ArriveMs = float64(id)
		id++
		q.PushBack(r)
	})
	// Each cycle may amortize an append regrowth or a compaction copy, but
	// not both at full cost every time.
	if avg > 1.5 {
		t.Errorf("steady-state allocs/op = %v, want <= 1.5", avg)
	}
}
