package sched_test

import (
	"fmt"

	"split/internal/model"
	"split/internal/sched"
)

// ExampleQueue_InsertGreedy walks Algorithm 1: a long request waits, a
// short one arrives and bubbles in front of it, while a same-task request
// stays FIFO.
func ExampleQueue_InsertGreedy() {
	q := sched.NewQueue(4) // α = 4

	long := sched.NewRequest(0, "vgg19", model.Long, 0, 67.5, []float64{22.5, 22.5, 22.5})
	fmt.Println("long at", q.InsertGreedy(0, long))

	short := sched.NewRequest(1, "yolov2", model.Short, 5, 10.8, []float64{10.8})
	fmt.Println("short at", q.InsertGreedy(5, short))

	short2 := sched.NewRequest(2, "yolov2", model.Short, 6, 10.8, []float64{10.8})
	fmt.Println("second short at", q.InsertGreedy(6, short2))

	// Output:
	// long at 0
	// short at 0
	// second short at 1
}

// ExampleRequest_PredictedRR previews a queued request's response ratio.
func ExampleRequest_PredictedRR() {
	r := sched.NewRequest(0, "yolov2", model.Short, 0, 10.8, []float64{10.8})
	// At t=10 with 20 ms of work ahead, against a target of 4x10.8 ms:
	fmt.Printf("%.2f\n", r.PredictedRR(10, 20, 4))
	// Output:
	// 0.94
}

// ExampleElastic_ShouldSplit shows the §3.3 elastic mechanism suspending
// splitting during a same-type burst.
func ExampleElastic_ShouldSplit() {
	e := sched.Elastic{Enabled: true, SameTypeLimit: 2, HighLoadQueueLen: 10}
	q := sched.NewQueue(4)
	fmt.Println("empty queue:", e.ShouldSplit(q, "vgg19"))
	for i := 0; i < 2; i++ {
		q.PushBack(sched.NewRequest(i, "vgg19", model.Long, 0, 67.5, []float64{67.5}))
	}
	fmt.Println("after burst:", e.ShouldSplit(q, "vgg19"))
	fmt.Println("other model:", e.ShouldSplit(q, "yolov2"))
	// Output:
	// empty queue: true
	// after burst: false
	// other model: true
}
