package trace

import (
	"math"
	"testing"
)

// ev is shorthand for building event streams in tests.
func ev(at float64, kind EventKind, req int, model string, block int) Event {
	return Event{AtMs: at, Kind: kind, ReqID: req, Model: model, Block: block}
}

// TestSpanBuilderDecomposition folds a hand-built two-request preemption
// timeline and checks every derived quantity.
//
// Timeline (one device): r0 (2 x 10 ms blocks) arrives at 0 and starts
// immediately; r1 (one 5 ms block) arrives at 4, preempts r0 at its block
// boundary (t=10), runs 10..15; r0 resumes 15..25 and completes.
func TestSpanBuilderDecomposition(t *testing.T) {
	events := []Event{
		ev(0, Arrive, 0, "long", 0),
		ev(0, StartBlock, 0, "long", 0),
		ev(4, Arrive, 1, "short", 0),
		ev(10, EndBlock, 0, "long", 0),
		ev(10, Preempt, 0, "long", 1),
		ev(10, StartBlock, 1, "short", 0),
		ev(15, EndBlock, 1, "short", 0),
		ev(15, Complete, 1, "short", 0),
		ev(15, StartBlock, 0, "long", 1),
		ev(25, EndBlock, 0, "long", 1),
		ev(25, Complete, 0, "long", 1),
	}
	tree := BuildSpans(events)
	if len(tree.Problems) != 0 {
		t.Fatalf("unexpected problems: %v", tree.Problems)
	}
	if len(tree.Requests) != 2 {
		t.Fatalf("got %d spans, want 2", len(tree.Requests))
	}

	r0 := tree.Span(0)
	if r0 == nil || r0.Outcome != SpanOutcomeServed {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.Blocks != 2 || r0.Preemptions != 1 {
		t.Errorf("r0 blocks=%d preemptions=%d, want 2/1", r0.Blocks, r0.Preemptions)
	}
	if r0.ExecMs != 20 || r0.WaitMs != 0 || r0.PreemptedMs != 5 {
		t.Errorf("r0 exec/wait/preempted = %v/%v/%v, want 20/0/5", r0.ExecMs, r0.WaitMs, r0.PreemptedMs)
	}

	r1 := tree.Span(1)
	if r1.ExecMs != 5 || r1.WaitMs != 6 || r1.PreemptedMs != 0 {
		t.Errorf("r1 exec/wait/preempted = %v/%v/%v, want 5/6/0", r1.ExecMs, r1.WaitMs, r1.PreemptedMs)
	}

	// The decomposition identity: wait + exec + preempted == e2e.
	for _, sp := range tree.Requests {
		if got := sp.WaitMs + sp.ExecMs + sp.PreemptedMs; math.Abs(got-sp.E2EMs()) > 1e-9 {
			t.Errorf("req %d: decomposition %v != e2e %v", sp.ReqID, got, sp.E2EMs())
		}
	}
}

// TestSpanBuilderQueuedShed: a request shed while queued decomposes into
// pure wait.
func TestSpanBuilderQueuedShed(t *testing.T) {
	events := []Event{
		ev(0, Arrive, 7, "m", 0),
		{AtMs: 30, Kind: Shed, ReqID: 7, Model: "m", Detail: "deadline"},
	}
	tree := BuildSpans(events)
	sp := tree.Span(7)
	if sp.Outcome != "deadline" {
		t.Fatalf("outcome = %q, want deadline", sp.Outcome)
	}
	if sp.WaitMs != 30 || sp.ExecMs != 0 || sp.PreemptedMs != 0 {
		t.Errorf("decomposition %v/%v/%v, want 30/0/0", sp.WaitMs, sp.ExecMs, sp.PreemptedMs)
	}
	if len(tree.Problems) != 0 {
		t.Errorf("problems: %v", tree.Problems)
	}
}

// TestSpanBuilderDeviceOverlapDetected: two closed grants overlapping on
// one device is an invariant violation.
func TestSpanBuilderDeviceOverlapDetected(t *testing.T) {
	events := []Event{
		ev(0, Arrive, 0, "a", 0),
		ev(0, Arrive, 1, "b", 0),
		ev(0, StartBlock, 0, "a", 0),
		ev(5, StartBlock, 1, "b", 0),
		ev(10, EndBlock, 0, "a", 0),
		ev(12, EndBlock, 1, "b", 0),
	}
	tree := BuildSpans(events)
	if len(tree.Problems) == 0 {
		t.Fatal("overlapping grants not reported")
	}
}

// TestSpanBuilderBatchSharesGrant: batch members share one device hold
// without tripping the overlap check, and the batch id is recorded.
func TestSpanBuilderBatchSharesGrant(t *testing.T) {
	events := []Event{
		ev(0, Arrive, 0, "m", 0),
		ev(1, Arrive, 1, "m", 0),
		{AtMs: 2, Kind: StartBlock, ReqID: 0, Model: "m", Block: 0, Batch: 9},
		{AtMs: 2, Kind: StartBlock, ReqID: 1, Model: "m", Block: 0, Batch: 9},
		{AtMs: 8, Kind: EndBlock, ReqID: 0, Model: "m", Block: 0, Batch: 9},
		{AtMs: 8, Kind: EndBlock, ReqID: 1, Model: "m", Block: 0, Batch: 9},
		ev(8, Complete, 0, "m", 0),
		ev(8, Complete, 1, "m", 0),
	}
	tree := BuildSpans(events)
	if len(tree.Problems) != 0 {
		t.Fatalf("batch grant flagged: %v", tree.Problems)
	}
	if got := tree.Span(1).Batches; len(got) != 1 || got[0] != 9 {
		t.Errorf("batches = %v, want [9]", got)
	}
}

// TestSpanBuilderViolations: settle-before-release and end-without-start
// are reported, not absorbed.
func TestSpanBuilderViolations(t *testing.T) {
	cases := map[string][]Event{
		"end_without_start": {
			ev(0, Arrive, 0, "m", 0),
			ev(5, EndBlock, 0, "m", 0),
		},
		"settle_under_grant": {
			ev(0, Arrive, 0, "m", 0),
			ev(0, StartBlock, 0, "m", 0),
			ev(3, Complete, 0, "m", 0),
		},
		"double_start": {
			ev(0, Arrive, 0, "m", 0),
			ev(0, StartBlock, 0, "m", 0),
			ev(1, StartBlock, 0, "m", 1),
		},
	}
	for name, events := range cases {
		if tree := BuildSpans(events); len(tree.Problems) == 0 {
			t.Errorf("%s: no problem reported", name)
		}
	}
}

// TestSpanBuilderTruncatedStream: a stream missing the arrive (ring wrap)
// still folds, marked truncated.
func TestSpanBuilderTruncatedStream(t *testing.T) {
	events := []Event{
		ev(10, StartBlock, 3, "m", 1),
		ev(20, EndBlock, 3, "m", 1),
		ev(20, Complete, 3, "m", 1),
	}
	tree := BuildSpans(events)
	sp := tree.Span(3)
	if sp == nil || !sp.Truncated {
		t.Fatalf("span = %+v, want truncated", sp)
	}
	if sp.ExecMs != 10 || sp.Outcome != SpanOutcomeServed {
		t.Errorf("exec=%v outcome=%q", sp.ExecMs, sp.Outcome)
	}
}

// TestSpanBuilderOpenGrantAtStreamEnd: a live snapshot may end mid-block;
// the open grant becomes an exec interval to the horizon, outcome "open".
func TestSpanBuilderOpenGrantAtStreamEnd(t *testing.T) {
	events := []Event{
		ev(0, Arrive, 0, "m", 0),
		ev(2, StartBlock, 0, "m", 0),
		ev(6, Arrive, 1, "m", 0), // advances the horizon past the open start
	}
	tree := BuildSpans(events)
	sp := tree.Span(0)
	if sp.Outcome != "open" || sp.Blocks != 1 {
		t.Fatalf("span = %+v, want open with 1 block", sp)
	}
	if sp.ExecMs != 4 { // 2..6 (horizon)
		t.Errorf("exec = %v, want 4", sp.ExecMs)
	}
	if len(tree.Problems) != 0 {
		t.Errorf("problems: %v", tree.Problems)
	}
}

// TestSpanBuilderMaxRequests keeps the most recently arrived spans.
func TestSpanBuilderMaxRequests(t *testing.T) {
	var events []Event
	for i := 0; i < 5; i++ {
		events = append(events, ev(float64(i), Arrive, i, "m", 0))
	}
	tree := SpanBuilder{MaxRequests: 2}.Build(events)
	if len(tree.Requests) != 2 {
		t.Fatalf("got %d spans, want 2", len(tree.Requests))
	}
	if tree.Requests[0].ReqID != 3 || tree.Requests[1].ReqID != 4 {
		t.Errorf("kept %d and %d, want 3 and 4", tree.Requests[0].ReqID, tree.Requests[1].ReqID)
	}
}

// TestSpanBuilderDeviceHops: exec intervals on different devices count
// hops and record the lanes.
func TestSpanBuilderDeviceHops(t *testing.T) {
	events := []Event{
		ev(0, Arrive, 0, "m", 0),
		{AtMs: 0, Kind: StartBlock, ReqID: 0, Model: "m", Block: 0, Device: 0},
		{AtMs: 5, Kind: EndBlock, ReqID: 0, Model: "m", Block: 0, Device: 0},
		{AtMs: 7, Kind: StartBlock, ReqID: 0, Model: "m", Block: 1, Device: 2},
		{AtMs: 12, Kind: EndBlock, ReqID: 0, Model: "m", Block: 1, Device: 2},
		ev(12, Complete, 0, "m", 1),
	}
	tree := BuildSpans(events)
	sp := tree.Span(0)
	if sp.DeviceHops != 1 || len(sp.Devices) != 2 {
		t.Errorf("hops=%d devices=%v, want 1 hop over [0 2]", sp.DeviceHops, sp.Devices)
	}
	if sp.PreemptedMs != 2 {
		t.Errorf("preempted = %v, want 2", sp.PreemptedMs)
	}
}
