package trace

// Drop reasons shared by the simulator (internal/policy) and the serving
// path (internal/serve). Both layers must describe the same fate with the
// same word — the evaluation pipeline joins sim Records against serve
// Records label-for-label, and a one-sided respelling silently empties the
// join. The vocab lint rule enforces that each constant here is referenced
// from both layers and that neither redeclares the literal.
const (
	// ReasonDeadline marks a request shed because its deadline passed (or,
	// under predictive shedding, became unmeetable).
	ReasonDeadline = "deadline"
	// ReasonCanceled marks a request canceled by its client.
	ReasonCanceled = "canceled"
	// ReasonDeviceFault marks a request whose block kept failing past the
	// injected-fault retry budget.
	ReasonDeviceFault = "device_fault"
	// ReasonAdmission marks a request rejected at the front door by the
	// fleet.Admission gate before it was ever enqueued — token bucket empty,
	// queue-length cap reached, or predicted response ratio over budget.
	ReasonAdmission = "admission"
)
