package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event JSON ("trace event format"), the interchange format
// Perfetto and chrome://tracing open directly. The export maps the span
// tree onto per-device lanes: pid = fleet device, tid = request, complete
// ("X") events for exec intervals and wait/preempted gaps, instant ("i")
// events for arrivals, preemptions and settles. Timestamps are
// microseconds, as the format requires; displayTimeUnit keeps Perfetto's
// ruler in milliseconds.

// perfettoEvent is one trace-event record. Fields follow the published
// format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type perfettoEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// perfettoFile is the JSON object format of a trace-event recording.
type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	OtherData       map[string]any  `json:"otherData,omitempty"`
}

const usPerMs = 1000.0

// WritePerfetto renders the span tree as Chrome trace-event JSON. The
// queueing phases (wait, preempted) live on the request's own lane under a
// synthetic "queue" process (pid = -1 shifted to the max device + 1, since
// the format wants non-negative pids); exec intervals live under their
// device's pid so each device reads as one occupancy lane.
//
// On spatially shared fleets (any exec interval carrying a non-zero
// partition) each device's process is subdivided into per-partition
// threads — tid = partition slot, the request in args — so concurrent
// partition holds render as parallel tracks inside the device lane.
// Unpartitioned trees keep tid = request, byte-identical to before.
func (t *SpanTree) WritePerfetto(w io.Writer) error {
	maxDev := 0
	partitioned := false
	for i := range t.Requests {
		for _, d := range t.Requests[i].Devices {
			if d > maxDev {
				maxDev = d
			}
		}
		for _, iv := range t.Requests[i].Intervals {
			if iv.Part != 0 {
				partitioned = true
			}
		}
	}
	queuePID := maxDev + 1

	f := perfettoFile{DisplayTimeUnit: "ms", OtherData: map[string]any{
		"source":   "splittrace",
		"requests": len(t.Requests),
	}}
	devSeen := map[int]bool{}
	laneSeen := map[laneKey]bool{}
	add := func(e perfettoEvent) { f.TraceEvents = append(f.TraceEvents, e) }

	for i := range t.Requests {
		sp := &t.Requests[i]
		add(perfettoEvent{Name: "arrive", Cat: "lifecycle", Phase: "i", Scope: "t",
			TsUs: sp.ArriveMs * usPerMs, PID: queuePID, TID: sp.ReqID,
			Args: map[string]any{"model": sp.Model}})
		for _, iv := range sp.Intervals {
			switch iv.Phase {
			case PhaseExec:
				devSeen[iv.Device] = true
				args := map[string]any{"req": sp.ReqID, "model": sp.Model, "block": iv.Block}
				if iv.Batch != 0 {
					args["batch"] = iv.Batch
				}
				if iv.Detail != "" {
					args["detail"] = iv.Detail
				}
				tid := sp.ReqID
				if partitioned {
					tid = iv.Part
					args["part"] = iv.Part
					laneSeen[laneKey{iv.Device, iv.Part}] = true
				}
				add(perfettoEvent{
					Name: fmt.Sprintf("%s/b%d", sp.Model, iv.Block), Cat: "exec", Phase: "X",
					TsUs: iv.StartMs * usPerMs, DurUs: iv.DurationMs() * usPerMs,
					PID: iv.Device, TID: tid, Args: args,
				})
			default: // wait, preempted
				add(perfettoEvent{
					Name: iv.Phase, Cat: "queue", Phase: "X",
					TsUs: iv.StartMs * usPerMs, DurUs: iv.DurationMs() * usPerMs,
					PID: queuePID, TID: sp.ReqID,
					Args: map[string]any{"model": sp.Model},
				})
			}
		}
		if sp.Decided() {
			add(perfettoEvent{Name: sp.Outcome, Cat: "lifecycle", Phase: "i", Scope: "t",
				TsUs: sp.DoneMs * usPerMs, PID: queuePID, TID: sp.ReqID,
				Args: map[string]any{
					"model": sp.Model, "wait_ms": sp.WaitMs, "exec_ms": sp.ExecMs,
					"preempted_ms": sp.PreemptedMs, "preemptions": sp.Preemptions,
				}})
		}
	}

	// Process/thread naming metadata so Perfetto labels the lanes.
	devs := make([]int, 0, len(devSeen))
	for d := range devSeen {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	for _, d := range devs {
		add(perfettoEvent{Name: "process_name", Phase: "M", PID: d, TID: 0,
			Args: map[string]any{"name": fmt.Sprintf("device %d", d)}})
	}
	if partitioned {
		// Label each partition sub-lane so Perfetto renders "partition p"
		// tracks inside the device process.
		lanes := make([]laneKey, 0, len(laneSeen))
		for l := range laneSeen {
			lanes = append(lanes, l)
		}
		sort.Slice(lanes, func(i, j int) bool {
			if lanes[i].dev != lanes[j].dev {
				return lanes[i].dev < lanes[j].dev
			}
			return lanes[i].part < lanes[j].part
		})
		for _, l := range lanes {
			add(perfettoEvent{Name: "thread_name", Phase: "M", PID: l.dev, TID: l.part,
				Args: map[string]any{"name": fmt.Sprintf("partition %d", l.part)}})
		}
	}
	add(perfettoEvent{Name: "process_name", Phase: "M", PID: queuePID, TID: 0,
		Args: map[string]any{"name": "queue"}})

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ValidatePerfetto parses data as Chrome trace-event JSON and checks the
// schema constraints this package relies on: an object with a traceEvents
// array whose entries all carry a phase, a name, non-negative timestamps
// and (for complete events) non-negative durations. It returns the number
// of trace events, so round-trip tests can compare against the source
// span tree.
func ValidatePerfetto(data []byte) (int, error) {
	var f perfettoFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("trace: perfetto export is not valid JSON: %w", err)
	}
	if f.DisplayTimeUnit != "ms" && f.DisplayTimeUnit != "ns" && f.DisplayTimeUnit != "" {
		return 0, fmt.Errorf("trace: bad displayTimeUnit %q", f.DisplayTimeUnit)
	}
	for i, e := range f.TraceEvents {
		if e.Phase == "" {
			return 0, fmt.Errorf("trace: event %d has no ph", i)
		}
		if e.Name == "" {
			return 0, fmt.Errorf("trace: event %d has no name", i)
		}
		if e.TsUs < 0 {
			return 0, fmt.Errorf("trace: event %d has negative ts %v", i, e.TsUs)
		}
		if e.Phase == "X" && e.DurUs < 0 {
			return 0, fmt.Errorf("trace: complete event %d has negative dur %v", i, e.DurUs)
		}
		if e.Phase == "i" && e.Scope != "t" && e.Scope != "p" && e.Scope != "g" && e.Scope != "" {
			return 0, fmt.Errorf("trace: instant event %d has bad scope %q", i, e.Scope)
		}
	}
	return len(f.TraceEvents), nil
}
