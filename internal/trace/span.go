package trace

import (
	"fmt"
	"sort"
)

// Interval phases inside a request span. Exec intervals come from
// StartBlock/EndBlock pairs; Wait covers time between arrival and the first
// grant; Preempted covers gaps between grants where the request had started
// but did not hold the device.
const (
	PhaseWait      = "wait"
	PhaseExec      = "exec"
	PhasePreempted = "preempted"
)

// Interval is one contiguous phase of a request's lifetime.
type Interval struct {
	Phase string `json:"phase"`
	// Block is the block index for exec intervals, -1 otherwise.
	Block int `json:"block"`
	// Device is the fleet device (exec intervals; -1 for wait/preempted,
	// which happen in the queue, not on a device).
	Device int `json:"device"`
	// Part is the device partition slot for exec intervals on spatially
	// shared fleets; 0 otherwise.
	Part    int     `json:"part,omitempty"`
	Batch   int     `json:"batch,omitempty"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
	// Detail carries the source event's detail (exec intervals only).
	Detail string `json:"detail,omitempty"`
}

// DurationMs is the interval length.
func (iv Interval) DurationMs() float64 { return iv.EndMs - iv.StartMs }

// RequestSpan is one request's causal span tree: its lifetime decomposed
// into wait / exec / preempted intervals, with the derived quantities the
// paper's Figures 6 and 7 are built from.
type RequestSpan struct {
	ReqID int    `json:"req"`
	Model string `json:"model"`
	// Outcome is "served" for completed requests, the shed/drop reason for
	// terminated ones, and "open" for requests still undecided when the
	// event stream ended (or truncated out of a ring snapshot).
	Outcome   string     `json:"outcome"`
	ArriveMs  float64    `json:"arrive_ms"`
	DoneMs    float64    `json:"done_ms"`
	Intervals []Interval `json:"intervals"`
	// Derived decomposition: WaitMs + ExecMs + PreemptedMs spans
	// [ArriveMs, DoneMs] exactly for decided, non-truncated requests.
	WaitMs      float64 `json:"wait_ms"`
	ExecMs      float64 `json:"exec_ms"`
	PreemptedMs float64 `json:"preempted_ms"`
	// Blocks is the number of exec intervals (block executions, including
	// retried attempts merged into their boundary-delimited device holds).
	Blocks int `json:"blocks"`
	// Devices lists the distinct devices the request executed on, in first-
	// use order; DeviceHops counts transitions between consecutive exec
	// intervals on different devices.
	Devices    []int `json:"devices,omitempty"`
	DeviceHops int   `json:"device_hops"`
	// Batches lists the distinct batch ids the request's grants belonged
	// to (empty when it never executed inside a micro-batch).
	Batches []int `json:"batches,omitempty"`
	// Preemptions counts Preempt events attributed to the request.
	Preemptions int `json:"preemptions"`
	// Truncated marks a span reconstructed from a stream that is missing
	// the request's Arrive event (e.g. a ring snapshot that wrapped);
	// invariant checks that need the full lifetime are skipped for it.
	Truncated bool `json:"truncated,omitempty"`
}

// Decided reports whether the request reached a terminal outcome in the
// analysed stream.
func (rs *RequestSpan) Decided() bool { return rs.Outcome != "open" }

// E2EMs is the request's observed lifetime in the stream.
func (rs *RequestSpan) E2EMs() float64 { return rs.DoneMs - rs.ArriveMs }

// SpanOutcomeServed labels completed requests in RequestSpan.Outcome.
// Shed spans carry the shed reason from the event stream instead.
const SpanOutcomeServed = "served"

// SpanTree is the folded view of a whole event stream: one RequestSpan per
// request plus per-device occupancy lanes, with the invariant problems
// found while folding.
type SpanTree struct {
	Requests []RequestSpan `json:"requests"`
	// FirstMs/LastMs bound the analysed stream.
	FirstMs float64 `json:"first_ms"`
	LastMs  float64 `json:"last_ms"`
	// Problems lists invariant violations found while folding: overlapping
	// device grants, EndBlock without StartBlock, settle before the final
	// grant released, out-of-order timestamps inside one request. A stream
	// produced by the simulators or the server folds with none.
	Problems []string `json:"problems,omitempty"`
}

// Span returns the span for the given request id, or nil.
func (t *SpanTree) Span(id int) *RequestSpan {
	for i := range t.Requests {
		if t.Requests[i].ReqID == id {
			return &t.Requests[i]
		}
	}
	return nil
}

// SpanBuilder folds a flat event stream — from a Tracer, a Ring snapshot,
// or a JSONL recording; sim and serve emit the same vocabulary — into a
// SpanTree. The zero value is ready to use.
type SpanBuilder struct {
	// MaxRequests, when > 0, keeps only the MaxRequests most recently
	// arrived requests in the result (the /spanz ?n= knob).
	MaxRequests int
}

// spanState accumulates one request while folding.
type spanState struct {
	span      RequestSpan
	seen      bool    // any event observed
	arrived   bool    // Arrive event observed
	openStart float64 // StartBlock time of the open grant, -1 when none
	openBlock int
	openDev   int
	openPart  int
	openBatch int
	openDet   string
	lastEnd   float64 // end of the last closed exec interval
	executed  bool    // at least one exec interval closed
	arrivalNo int     // arrival order for MaxRequests trimming
}

// deviceHold is one closed device grant, for the overlap check. Batched
// grants share one hold per member but the same batch id, so same-batch
// overlap is legal by construction.
type deviceHold struct {
	startMs, endMs float64
	req            int
	batch          int
}

// laneKey identifies one occupancy lane for the overlap check: grants on
// distinct partitions of one device legally overlap under spatial sharing,
// so exclusivity is per (device, partition), not per device. Unpartitioned
// streams carry part 0 everywhere and collapse to the per-device check.
type laneKey struct {
	dev, part int
}

// Build folds events into a SpanTree. The stream does not need to be
// time-sorted across requests (ring snapshots are, tracer streams are),
// but each request's own events must be in causal order — violations are
// reported in Problems, not silently absorbed.
func (b SpanBuilder) Build(events []Event) *SpanTree {
	t := &SpanTree{}
	if len(events) == 0 {
		return t
	}
	t.FirstMs, t.LastMs = events[0].AtMs, events[0].AtMs
	states := map[int]*spanState{}
	holds := map[laneKey][]deviceHold{}
	arrivalSeq := 0
	get := func(e Event) *spanState {
		st := states[e.ReqID]
		if st == nil {
			st = &spanState{openStart: -1, arrivalNo: arrivalSeq}
			arrivalSeq++
			st.span = RequestSpan{ReqID: e.ReqID, Model: e.Model, Outcome: "open",
				ArriveMs: e.AtMs, DoneMs: e.AtMs}
			switch e.Kind {
			case Arrive, Place, Enqueue:
				// Place and Enqueue legally precede Arrive in both the fleet
				// simulator and the server (routing happens before admission).
			default:
				// First sight of the request is mid-flight: the Arrive event
				// was truncated out of the stream (ring wrap). The span is
				// still useful, but lifetime invariants cannot be checked.
				st.span.Truncated = true
			}
			states[e.ReqID] = st
		}
		if st.span.Model == "" && e.Model != "" {
			st.span.Model = e.Model
		}
		return st
	}
	problemf := func(format string, args ...any) {
		t.Problems = append(t.Problems, fmt.Sprintf(format, args...))
	}

	for _, e := range events {
		if e.AtMs < t.FirstMs {
			t.FirstMs = e.AtMs
		}
		if e.AtMs > t.LastMs {
			t.LastMs = e.AtMs
		}
		// Run-level events carry ReqID -1 (drain markers, elastic
		// transitions) or describe pre-enqueue rejections; neither opens a
		// request span.
		if e.ReqID < 0 || e.Kind == Drop || e.Kind == ElasticOn || e.Kind == ElasticOff ||
			e.Kind == DrainStart || e.Kind == DrainEnd {
			continue
		}
		st := get(e)
		sp := &st.span
		switch e.Kind {
		case Arrive:
			if st.arrived {
				problemf("req %d: duplicate arrive at %.3f", e.ReqID, e.AtMs)
			}
			st.arrived = true
			sp.ArriveMs = e.AtMs
			if !st.seen {
				sp.DoneMs = e.AtMs
			}
		case StartBlock:
			if st.openStart >= 0 {
				problemf("req %d: start_block %d at %.3f with block %d still open",
					e.ReqID, e.Block, e.AtMs, st.openBlock)
				// Close the dangling grant zero-length so folding continues.
				st.openStart = -1
			}
			if sp.Decided() {
				problemf("req %d: start_block %d at %.3f after settle (%s)",
					e.ReqID, e.Block, e.AtMs, sp.Outcome)
			}
			st.openStart = e.AtMs
			st.openBlock = e.Block
			st.openDev = e.Device
			st.openPart = e.Part
			st.openBatch = e.Batch
			st.openDet = e.Detail
		case EndBlock:
			if st.openStart < 0 {
				problemf("req %d: end_block %d at %.3f without start_block",
					e.ReqID, e.Block, e.AtMs)
				break
			}
			if e.AtMs < st.openStart {
				problemf("req %d: end_block %d at %.3f before its start %.3f",
					e.ReqID, e.Block, e.AtMs, st.openStart)
			}
			// Close the wait/preempted gap that preceded this grant.
			gapStart := sp.ArriveMs
			phase := PhaseWait
			if st.executed {
				gapStart = st.lastEnd
				phase = PhasePreempted
			}
			if st.openStart > gapStart {
				sp.Intervals = append(sp.Intervals, Interval{Phase: phase, Block: -1, Device: -1,
					StartMs: gapStart, EndMs: st.openStart})
			}
			sp.Intervals = append(sp.Intervals, Interval{Phase: PhaseExec, Block: st.openBlock,
				Device: st.openDev, Part: st.openPart, Batch: st.openBatch,
				StartMs: st.openStart, EndMs: e.AtMs, Detail: st.openDet})
			lane := laneKey{st.openDev, st.openPart}
			holds[lane] = append(holds[lane], deviceHold{st.openStart, e.AtMs, e.ReqID, st.openBatch})
			sp.Blocks++
			if len(sp.Devices) == 0 || sp.Devices[len(sp.Devices)-1] != st.openDev {
				if st.executed {
					sp.DeviceHops++
				}
				known := false
				for _, d := range sp.Devices {
					if d == st.openDev {
						known = true
						break
					}
				}
				if !known {
					sp.Devices = append(sp.Devices, st.openDev)
				}
			}
			if st.openBatch != 0 {
				known := false
				for _, bid := range sp.Batches {
					if bid == st.openBatch {
						known = true
						break
					}
				}
				if !known {
					sp.Batches = append(sp.Batches, st.openBatch)
				}
			}
			st.lastEnd = e.AtMs
			st.executed = true
			st.openStart = -1
		case Preempt:
			sp.Preemptions++
		case Complete, Shed:
			if sp.Decided() {
				problemf("req %d: %s at %.3f after settle (%s)", e.ReqID, e.Kind, e.AtMs, sp.Outcome)
				break
			}
			if st.openStart >= 0 {
				problemf("req %d: %s at %.3f with block %d still holding the device",
					e.ReqID, e.Kind, e.AtMs, st.openBlock)
			}
			if st.executed && e.AtMs < st.lastEnd {
				problemf("req %d: settle at %.3f before last grant released at %.3f",
					e.ReqID, e.AtMs, st.lastEnd)
			}
			sp.DoneMs = e.AtMs
			if e.Kind == Complete {
				sp.Outcome = SpanOutcomeServed
			} else {
				sp.Outcome = e.Detail
				if sp.Outcome == "" {
					sp.Outcome = "shed"
				}
			}
			// A settle later than the last grant release (always the case
			// for queued sheds, never for boundary completions) leaves a
			// trailing non-exec gap; close it so the decomposition covers
			// the whole lifetime.
			gapStart := sp.ArriveMs
			phase := PhaseWait
			if st.executed {
				gapStart = st.lastEnd
				phase = PhasePreempted
			}
			if e.AtMs > gapStart {
				sp.Intervals = append(sp.Intervals, Interval{Phase: phase, Block: -1, Device: -1,
					StartMs: gapStart, EndMs: e.AtMs})
			}
		case Cancel, Fault, Enqueue, Place:
			// Annotations on the request's lifetime; they shift no phase
			// boundaries. (Cancellation takes effect at the settle event.)
		}
		st.seen = true
	}

	// Sum the decomposition and flag never-closed grants.
	ids := make([]int, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := states[id]
		sp := &st.span
		if st.openStart >= 0 && sp.Outcome == "open" {
			// In-flight at stream end: legal for live snapshots; represent
			// the open grant as an exec interval up to the stream horizon.
			sp.Intervals = append(sp.Intervals, Interval{Phase: PhaseExec, Block: st.openBlock,
				Device: st.openDev, Part: st.openPart, Batch: st.openBatch,
				StartMs: st.openStart, EndMs: t.LastMs, Detail: st.openDet})
			sp.Blocks++
			sp.DoneMs = t.LastMs
		}
		if sp.Outcome == "open" && st.executed && sp.DoneMs < st.lastEnd {
			sp.DoneMs = st.lastEnd
		}
		for _, iv := range sp.Intervals {
			switch iv.Phase {
			case PhaseWait:
				sp.WaitMs += iv.DurationMs()
			case PhaseExec:
				sp.ExecMs += iv.DurationMs()
			case PhasePreempted:
				sp.PreemptedMs += iv.DurationMs()
			}
		}
		t.Requests = append(t.Requests, *sp)
	}

	// Per-lane overlap check: two closed grants on one (device, partition)
	// lane may not overlap unless they belong to the same micro-batch.
	// Grants on distinct partitions of one device are concurrent by design.
	const eps = 1e-9
	lanes := make([]laneKey, 0, len(holds))
	for l := range holds {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].dev != lanes[j].dev {
			return lanes[i].dev < lanes[j].dev
		}
		return lanes[i].part < lanes[j].part
	})
	for _, l := range lanes {
		hs := holds[l]
		sort.Slice(hs, func(i, j int) bool {
			if hs[i].startMs != hs[j].startMs {
				return hs[i].startMs < hs[j].startMs
			}
			return hs[i].endMs < hs[j].endMs
		})
		lane := fmt.Sprintf("device %d", l.dev)
		if l.part != 0 {
			lane = fmt.Sprintf("device %d part %d", l.dev, l.part)
		}
		for i := 1; i < len(hs); i++ {
			prev, cur := hs[i-1], hs[i]
			if cur.startMs < prev.endMs-eps && !(cur.batch != 0 && cur.batch == prev.batch) {
				problemf("%s: grants overlap: req %d [%.3f, %.3f] and req %d [%.3f, %.3f]",
					lane, prev.req, prev.startMs, prev.endMs, cur.req, cur.startMs, cur.endMs)
			}
		}
	}

	if b.MaxRequests > 0 && len(t.Requests) > b.MaxRequests {
		// Keep the most recently arrived requests (by arrival order in the
		// stream, which is arrival time for sorted streams).
		byArrival := append([]RequestSpan(nil), t.Requests...)
		sort.Slice(byArrival, func(i, j int) bool {
			return states[byArrival[i].ReqID].arrivalNo < states[byArrival[j].ReqID].arrivalNo
		})
		keep := byArrival[len(byArrival)-b.MaxRequests:]
		sort.Slice(keep, func(i, j int) bool { return keep[i].ReqID < keep[j].ReqID })
		t.Requests = keep
	}
	return t
}

// BuildSpans is shorthand for the zero-configured SpanBuilder.
func BuildSpans(events []Event) *SpanTree {
	return SpanBuilder{}.Build(events)
}

// Summary renders one line per request: the wait/exec/preempted
// decomposition behind the paper's per-request latency stories.
func (t *SpanTree) Summary() string {
	out := ""
	for i := range t.Requests {
		sp := &t.Requests[i]
		out += fmt.Sprintf("req%-4d %-10s %-12s arrive=%.1f done=%.1f wait=%.1f exec=%.1f preempted=%.1f blocks=%d preempts=%d\n",
			sp.ReqID, sp.Model, sp.Outcome, sp.ArriveMs, sp.DoneMs,
			sp.WaitMs, sp.ExecMs, sp.PreemptedMs, sp.Blocks, sp.Preemptions)
	}
	return out
}
