package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRingWrapsAndKeepsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{ReqID: i, Kind: Arrive})
	}
	if r.Len() != 3 || r.Cap() != 3 || r.Total() != 5 {
		t.Fatalf("len=%d cap=%d total=%d", r.Len(), r.Cap(), r.Total())
	}
	snap := r.Snapshot()
	for i, want := range []int{2, 3, 4} {
		if snap[i].ReqID != want {
			t.Errorf("snap[%d].ReqID = %d, want %d", i, snap[i].ReqID, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(10)
	r.Emit(Event{ReqID: 7})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].ReqID != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want 1", r.Cap())
	}
	r.Emit(Event{ReqID: 1})
	r.Emit(Event{ReqID: 2})
	if snap := r.Snapshot(); len(snap) != 1 || snap[0].ReqID != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestNilRingIsNoOp(t *testing.T) {
	var r *Ring
	r.Emit(Event{ReqID: 1}) // must not panic
	if r.Len() != 0 || r.Cap() != 0 || r.Total() != 0 || r.Snapshot() != nil {
		t.Error("nil ring not inert")
	}
}

func TestRingWriteJSONL(t *testing.T) {
	r := NewRing(4)
	r.Emit(Event{AtMs: 1, Kind: Arrive, ReqID: 0, Model: "vgg19"})
	r.Emit(Event{AtMs: 2, Kind: Complete, ReqID: 0, Model: "vgg19"})
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.Contains(lines[0], `"arrive"`) || !strings.Contains(lines[1], `"complete"`) {
		t.Errorf("jsonl = %q", b.String())
	}
}

func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{ReqID: g*100 + i})
				_ = r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 || r.Len() != 64 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
}

// TestRingConcurrentEmitAndDump hammers the ring from dedicated emitter
// and dumper goroutines — Snapshot, WriteJSONL, Len, Total and Cap racing
// against Emit — and checks every dump is internally consistent: bounded
// by capacity, holding only events some emitter actually produced, and
// (per emitter) in emission order. Run under -race, this is the
// flight-recorder concurrency contract.
func TestRingConcurrentEmitAndDump(t *testing.T) {
	const (
		emitters = 4
		perEmit  = 500
		capacity = 64
	)
	r := NewRing(capacity)
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEmit; i++ {
				// ReqID encodes (emitter, seq) so dumpers can check
				// per-emitter ordering inside any snapshot.
				r.Emit(Event{Kind: StartBlock, ReqID: g*perEmit + i, Model: "m"})
			}
		}(g)
	}
	stop := make(chan struct{})
	var dumpers sync.WaitGroup
	for d := 0; d < 3; d++ {
		dumpers.Add(1)
		go func() {
			defer dumpers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if len(snap) > capacity {
					t.Errorf("snapshot longer than capacity: %d", len(snap))
					return
				}
				last := make(map[int]int) // emitter -> last seq seen
				for _, e := range snap {
					if e.ReqID < 0 || e.ReqID >= emitters*perEmit {
						t.Errorf("snapshot holds event never emitted: %+v", e)
						return
					}
					em, seq := e.ReqID/perEmit, e.ReqID%perEmit
					if prev, ok := last[em]; ok && seq <= prev {
						t.Errorf("emitter %d out of order: %d after %d", em, seq, prev)
						return
					}
					last[em] = seq
				}
				var b strings.Builder
				if err := r.WriteJSONL(&b); err != nil {
					t.Errorf("WriteJSONL: %v", err)
					return
				}
				if n := r.Len(); n < 0 || n > r.Cap() {
					t.Errorf("len %d outside [0, %d]", n, r.Cap())
					return
				}
				_ = r.Total()
			}
		}()
	}
	wg.Wait()
	close(stop)
	dumpers.Wait()
	if r.Total() != emitters*perEmit {
		t.Fatalf("total = %d, want %d", r.Total(), emitters*perEmit)
	}
	if r.Len() != capacity {
		t.Fatalf("len = %d, want full ring %d", r.Len(), capacity)
	}
}

func TestFanout(t *testing.T) {
	a, b := New(), NewRing(8)
	s := Fanout(nil, a, nil, b)
	s.Emit(Event{ReqID: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fanout missed a sink: tracer=%d ring=%d", a.Len(), b.Len())
	}
	if Fanout(nil, nil) != nil {
		t.Error("all-nil fanout should collapse to nil")
	}
	if one := Fanout(a); one != Sink(a) {
		t.Error("single-sink fanout should return the sink itself")
	}
}
