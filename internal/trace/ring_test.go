package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRingWrapsAndKeepsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{ReqID: i, Kind: Arrive})
	}
	if r.Len() != 3 || r.Cap() != 3 || r.Total() != 5 {
		t.Fatalf("len=%d cap=%d total=%d", r.Len(), r.Cap(), r.Total())
	}
	snap := r.Snapshot()
	for i, want := range []int{2, 3, 4} {
		if snap[i].ReqID != want {
			t.Errorf("snap[%d].ReqID = %d, want %d", i, snap[i].ReqID, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(10)
	r.Emit(Event{ReqID: 7})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].ReqID != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want 1", r.Cap())
	}
	r.Emit(Event{ReqID: 1})
	r.Emit(Event{ReqID: 2})
	if snap := r.Snapshot(); len(snap) != 1 || snap[0].ReqID != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestNilRingIsNoOp(t *testing.T) {
	var r *Ring
	r.Emit(Event{ReqID: 1}) // must not panic
	if r.Len() != 0 || r.Cap() != 0 || r.Total() != 0 || r.Snapshot() != nil {
		t.Error("nil ring not inert")
	}
}

func TestRingWriteJSONL(t *testing.T) {
	r := NewRing(4)
	r.Emit(Event{AtMs: 1, Kind: Arrive, ReqID: 0, Model: "vgg19"})
	r.Emit(Event{AtMs: 2, Kind: Complete, ReqID: 0, Model: "vgg19"})
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.Contains(lines[0], `"arrive"`) || !strings.Contains(lines[1], `"complete"`) {
		t.Errorf("jsonl = %q", b.String())
	}
}

func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{ReqID: g*100 + i})
				_ = r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 || r.Len() != 64 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
}

func TestFanout(t *testing.T) {
	a, b := New(), NewRing(8)
	s := Fanout(nil, a, nil, b)
	s.Emit(Event{ReqID: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fanout missed a sink: tracer=%d ring=%d", a.Len(), b.Len())
	}
	if Fanout(nil, nil) != nil {
		t.Error("all-nil fanout should collapse to nil")
	}
	if one := Fanout(a); one != Sink(a) {
		t.Error("single-sink fanout should return the sink itself")
	}
}
