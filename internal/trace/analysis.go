package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one contiguous device occupancy interval by a request.
type Span struct {
	ReqID int
	Model string
	Block int
	// Device is the fleet device the block ran on (0 single-device).
	Device int
	// Part is the device partition the block ran on (0 unpartitioned).
	Part    int
	StartMs float64
	EndMs   float64
}

// DurationMs returns the span length.
func (s Span) DurationMs() float64 { return s.EndMs - s.StartMs }

// Spans pairs StartBlock/EndBlock events into device occupancy intervals,
// ordered by start time. Unpaired starts (still in flight at trace end) are
// dropped.
func (t *Tracer) Spans() []Span {
	type open struct {
		at     float64
		block  int
		device int
		part   int
		model  string
	}
	pending := map[int]open{}
	var spans []Span
	for _, e := range t.Events() {
		switch e.Kind {
		case StartBlock:
			pending[e.ReqID] = open{at: e.AtMs, block: e.Block, device: e.Device, part: e.Part, model: e.Model}
		case EndBlock:
			if o, ok := pending[e.ReqID]; ok {
				spans = append(spans, Span{
					ReqID:   e.ReqID,
					Model:   o.model,
					Block:   o.block,
					Device:  o.device,
					Part:    o.part,
					StartMs: o.at,
					EndMs:   e.AtMs,
				})
				delete(pending, e.ReqID)
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartMs < spans[j].StartMs })
	return spans
}

// Analysis summarizes device behaviour over a trace.
type Analysis struct {
	// HorizonMs is the analysed interval [first event, last event].
	HorizonMs float64
	// BusyMs is total device occupancy (may exceed HorizonMs for
	// concurrent policies).
	BusyMs float64
	// Utilization is BusyMs/HorizonMs clamped to [0, ...].
	Utilization float64
	// BusyPeriods is the number of maximal busy intervals (sequential
	// policies only; overlapping spans are merged first).
	BusyPeriods int
	// MeanBusyPeriodMs is the average merged busy-interval length.
	MeanBusyPeriodMs float64
	// PerModelBusyMs attributes occupancy to models.
	PerModelBusyMs map[string]float64
	// PerDeviceBusyMs attributes occupancy to fleet devices; a
	// single-device trace has all its occupancy under key 0.
	PerDeviceBusyMs map[int]float64
	// Preemptions counts preempt events.
	Preemptions int
	// Completions counts complete events.
	Completions int
}

// Analyze computes the occupancy analysis of the trace.
func (t *Tracer) Analyze() Analysis {
	a := Analysis{PerModelBusyMs: map[string]float64{}, PerDeviceBusyMs: map[int]float64{}}
	events := t.Events()
	if len(events) == 0 {
		return a
	}
	first, last := events[0].AtMs, events[0].AtMs
	for _, e := range events {
		if e.AtMs < first {
			first = e.AtMs
		}
		if e.AtMs > last {
			last = e.AtMs
		}
		switch e.Kind {
		case Preempt:
			a.Preemptions++
		case Complete:
			a.Completions++
		}
	}
	a.HorizonMs = last - first

	spans := t.Spans()
	for _, s := range spans {
		a.BusyMs += s.DurationMs()
		a.PerModelBusyMs[s.Model] += s.DurationMs()
		a.PerDeviceBusyMs[s.Device] += s.DurationMs()
	}
	if a.HorizonMs > 0 {
		a.Utilization = a.BusyMs / a.HorizonMs
	}

	// Merge overlapping/contiguous spans into busy periods.
	const eps = 1e-9
	var curStart, curEnd float64
	started := false
	var periods []float64
	for _, s := range spans {
		switch {
		case !started:
			curStart, curEnd = s.StartMs, s.EndMs
			started = true
		case s.StartMs <= curEnd+eps:
			if s.EndMs > curEnd {
				curEnd = s.EndMs
			}
		default:
			periods = append(periods, curEnd-curStart)
			curStart, curEnd = s.StartMs, s.EndMs
		}
	}
	if started {
		periods = append(periods, curEnd-curStart)
	}
	a.BusyPeriods = len(periods)
	if len(periods) > 0 {
		var sum float64
		for _, p := range periods {
			sum += p
		}
		a.MeanBusyPeriodMs = sum / float64(len(periods))
	}
	return a
}

// String renders the analysis.
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "horizon=%.1fms busy=%.1fms util=%.1f%% busyPeriods=%d meanBusyPeriod=%.1fms preempts=%d completions=%d\n",
		a.HorizonMs, a.BusyMs, a.Utilization*100, a.BusyPeriods, a.MeanBusyPeriodMs, a.Preemptions, a.Completions)
	models := make([]string, 0, len(a.PerModelBusyMs))
	for m := range a.PerModelBusyMs {
		models = append(models, m)
	}
	sort.Strings(models)
	for _, m := range models {
		fmt.Fprintf(&b, "  %-12s %.1fms\n", m, a.PerModelBusyMs[m])
	}
	return b.String()
}
