package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{AtMs: 1, Kind: Arrive})
	tr.Recordf(2, Complete, 1, "m", 0, "x=%d", 3)
	if tr.Len() != 0 {
		t.Error("nil tracer recorded something")
	}
	if tr.Events() != nil {
		t.Error("nil tracer returned events")
	}
}

func TestRecordAndEvents(t *testing.T) {
	tr := New()
	tr.Record(Event{AtMs: 1, Kind: Arrive, ReqID: 7, Model: "vgg"})
	tr.Recordf(2, StartBlock, 7, "vgg", 0, "dur=%.1f", 5.0)
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	evs := tr.Events()
	if evs[0].Kind != Arrive || evs[1].Detail != "dur=5.0" {
		t.Errorf("events = %+v", evs)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New()
	tr.Recordf(1.5, Arrive, 1, "yolo", 0, "pos=0")
	tr.Recordf(2.5, Complete, 1, "yolo", 2, "rr=1.00")
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "at_ms,kind") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "arrive") || !strings.Contains(lines[2], "complete") {
		t.Errorf("rows = %v", lines[1:])
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New()
	tr.Recordf(1, StartBlock, 3, "gpt2", 1, "")
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.ReqID != 3 || e.Kind != StartBlock || e.Block != 1 {
		t.Errorf("roundtrip = %+v", e)
	}
}

func TestGantt(t *testing.T) {
	tr := New()
	tr.Recordf(0, StartBlock, 1, "vgg", 0, "")
	tr.Recordf(10, EndBlock, 1, "vgg", 0, "")
	tr.Recordf(10, StartBlock, 2, "yolo", 0, "")
	tr.Recordf(15, EndBlock, 2, "yolo", 0, "")
	tr.Recordf(15, StartBlock, 1, "vgg", 1, "")
	tr.Recordf(25, EndBlock, 1, "vgg", 1, "")
	g := tr.Gantt(0, 25, 1)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt rows: %q", g)
	}
	// First row is req1 (started first) and must have a gap where req2 ran.
	if !strings.Contains(lines[0], "req1") {
		t.Errorf("first row = %q", lines[0])
	}
	if !strings.Contains(lines[0], ".") || !strings.Contains(lines[0], "#") {
		t.Errorf("row lacks both marks: %q", lines[0])
	}
}

func TestGanttEmptyAndDegenerate(t *testing.T) {
	tr := New()
	if got := tr.Gantt(0, 0, 1); got != "" {
		t.Errorf("empty gantt = %q", got)
	}
	tr.Recordf(0, StartBlock, 1, "m", 0, "")
	tr.Recordf(5, EndBlock, 1, "m", 0, "")
	if got := tr.Gantt(0, 10, 0); got == "" {
		t.Error("auto cell width failed")
	}
}

func TestGanttIgnoresUnpairedStart(t *testing.T) {
	tr := New()
	tr.Recordf(0, StartBlock, 1, "m", 0, "")
	// No EndBlock: span never closes, so no rows.
	if got := tr.Gantt(0, 10, 1); got != "" {
		t.Errorf("unpaired start rendered: %q", got)
	}
}
