// Package trace records scheduling timelines — arrivals, block starts and
// ends, preemption decisions, completions — and renders them as CSV, JSON
// lines, or an ASCII Gantt chart like the paper's Figures 1 and 3.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// EventKind labels a trace event.
type EventKind string

// Event kinds emitted by the policies.
const (
	Arrive     EventKind = "arrive"
	StartBlock EventKind = "start_block"
	EndBlock   EventKind = "end_block"
	Preempt    EventKind = "preempt"
	Complete   EventKind = "complete"
	Drop       EventKind = "drop"
	// Enqueue records a queue insertion decision (Algorithm 1's chosen
	// position), emitted by sched.Queue when a Sink is attached.
	Enqueue EventKind = "enqueue"
	// ElasticOn / ElasticOff mark transitions of the §3.3 elastic mechanism:
	// ElasticOn means splitting is being suppressed (elastic mode active).
	ElasticOn  EventKind = "elastic_on"
	ElasticOff EventKind = "elastic_off"
	// Shed records a request dropped after it was enqueued — deadline
	// expiry, cancellation, drain timeout, stop, or device fault — with the
	// drop reason in Detail. Distinct from Drop, which records pre-enqueue
	// rejections.
	Shed EventKind = "shed"
	// Cancel records a cancellation taking effect on a request (Detail says
	// whether it was queued or in flight, and why).
	Cancel EventKind = "cancel"
	// Fault records an injected device fault on a block attempt: a latency
	// spike, a transient failure being retried, or a terminal device fault.
	Fault EventKind = "fault"
	// DrainStart / DrainEnd bracket a graceful drain: between them the
	// server accepts no new work and is finishing or shedding the backlog.
	DrainStart EventKind = "drain_start"
	DrainEnd   EventKind = "drain_end"
	// Place records a fleet placement decision: the chosen device is in
	// Device, the policy name in Detail. Emitted only by multi-device
	// deployments, so single-device traces are unchanged.
	Place EventKind = "place"
	// ScaleOut / ScaleIn record autoscaler membership changes: Device is
	// the device attached (scale-out) or beginning drain-then-release
	// (scale-in), Detail carries the triggering signal. They are control-
	// plane events and carry ReqID -1, so span folding ignores them.
	ScaleOut EventKind = "scale_out"
	ScaleIn  EventKind = "scale_in"
)

// Event is one timeline entry.
type Event struct {
	AtMs  float64   `json:"at_ms"`
	Kind  EventKind `json:"kind"`
	ReqID int       `json:"req"`
	Model string    `json:"model"`
	Block int       `json:"block,omitempty"`
	// Device is the fleet device the event happened on; 0 (and omitted
	// from JSON) on single-device deployments.
	Device int `json:"device,omitempty"`
	// Batch groups the StartBlock/EndBlock events of one batched device
	// grant: every member of a micro-batch carries the same non-zero id.
	// 0 (and omitted from JSON) means an unbatched scalar grant, so traces
	// from runs without batching are byte-identical to before.
	Batch int `json:"batch,omitempty"`
	// Part is the device partition slot the event happened on when the
	// fleet runs spatial sharing; 0 (and omitted from JSON) on
	// unpartitioned deployments, so temporal-only traces are byte-identical
	// to before.
	Part   int    `json:"part,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Sink receives a live stream of trace events. Implementations must be safe
// for concurrent use when attached to the real-time serving path; the
// simulators call Emit from a single goroutine. *Tracer and *Ring both
// implement Sink.
type Sink interface {
	Emit(Event)
}

// Fanout returns a Sink that forwards every event to each non-nil sink, or
// nil when none remain — callers can attach the result unconditionally.
func Fanout(sinks ...Sink) Sink {
	live := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Tracer collects events. A nil *Tracer is a valid no-op sink, so policies
// can call methods on it unconditionally.
type Tracer struct {
	events []Event
}

// Emit implements Sink by recording the event. No-op on a nil receiver.
func (t *Tracer) Emit(e Event) { t.Record(e) }

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Record appends an event. No-op on a nil receiver.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.events = append(t.events, e)
}

// Recordf is shorthand for Record with a formatted detail string.
func (t *Tracer) Recordf(atMs float64, kind EventKind, reqID int, model string, block int, format string, args ...any) {
	if t == nil {
		return
	}
	t.Record(Event{AtMs: atMs, Kind: kind, ReqID: reqID, Model: model, Block: block,
		Detail: fmt.Sprintf(format, args...)})
}

// DeviceRecordf is Recordf with an explicit fleet device.
func (t *Tracer) DeviceRecordf(atMs float64, kind EventKind, device, reqID int, model string, block int, format string, args ...any) {
	if t == nil {
		return
	}
	t.Record(Event{AtMs: atMs, Kind: kind, ReqID: reqID, Model: model, Block: block,
		Device: device, Detail: fmt.Sprintf(format, args...)})
}

// PartRecordf is DeviceRecordf with an explicit partition slot, for events
// emitted by spatial-sharing lanes. part 0 produces the event
// DeviceRecordf would, so unpartitioned call sites can route through
// either.
func (t *Tracer) PartRecordf(atMs float64, kind EventKind, device, part, reqID int, model string, block int, format string, args ...any) {
	if t == nil {
		return
	}
	t.Record(Event{AtMs: atMs, Kind: kind, ReqID: reqID, Model: model, Block: block,
		Device: device, Part: part, Detail: fmt.Sprintf(format, args...)})
}

// Events returns the recorded events in insertion order. Nil-safe.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded events. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// WriteCSV emits the trace as CSV with a header row.
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at_ms,kind,req,model,block,device,detail"); err != nil {
		return err
	}
	for _, e := range t.Events() {
		if _, err := fmt.Fprintf(w, "%.4f,%s,%d,%s,%d,%d,%q\n",
			e.AtMs, e.Kind, e.ReqID, e.Model, e.Block, e.Device, e.Detail); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL emits the trace as JSON lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders an ASCII Gantt chart of block executions between startMs and
// endMs: one row per request, one column per cell of width cellMs, '#' where
// a block of that request occupies the device. Requests are ordered by first
// execution.
func (t *Tracer) Gantt(startMs, endMs, cellMs float64) string {
	type span struct{ s, e float64 }
	spans := map[int][]span{}
	labels := map[int]string{}
	open := map[int]float64{}
	firstRun := map[int]float64{}
	for _, e := range t.Events() {
		switch e.Kind {
		case StartBlock:
			open[e.ReqID] = e.AtMs
			labels[e.ReqID] = e.Model
			if _, ok := firstRun[e.ReqID]; !ok {
				firstRun[e.ReqID] = e.AtMs
			}
		case EndBlock:
			if s, ok := open[e.ReqID]; ok {
				spans[e.ReqID] = append(spans[e.ReqID], span{s, e.AtMs})
				delete(open, e.ReqID)
			}
		}
	}
	// Only render requests that actually occupy the window.
	ids := make([]int, 0, len(spans))
	for id, ss := range spans {
		for _, sp := range ss {
			if sp.e > startMs && sp.s < endMs {
				ids = append(ids, id)
				break
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return firstRun[ids[i]] < firstRun[ids[j]] })

	if cellMs <= 0 {
		cellMs = (endMs - startMs) / 80
	}
	cols := int((endMs - startMs) / cellMs)
	if cols <= 0 {
		return ""
	}
	var b strings.Builder
	for _, id := range ids {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, sp := range spans[id] {
			lo := int((sp.s - startMs) / cellMs)
			hi := int((sp.e - startMs) / cellMs)
			for c := lo; c <= hi && c < cols; c++ {
				if c >= 0 {
					row[c] = '#'
				}
			}
		}
		fmt.Fprintf(&b, "req%-4d %-10s |%s|\n", id, labels[id], row)
	}
	return b.String()
}
