package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// partitionStream is two requests executing concurrently on distinct
// partitions of device 0, plus one on device 1 without partitions.
func partitionStream() []Event {
	return []Event{
		{AtMs: 0, Kind: Arrive, ReqID: 1, Model: "a"},
		{AtMs: 0, Kind: Arrive, ReqID: 2, Model: "b"},
		{AtMs: 0, Kind: Arrive, ReqID: 3, Model: "c"},
		{AtMs: 1, Kind: StartBlock, ReqID: 1, Model: "a", Block: 0, Device: 0, Part: 0},
		{AtMs: 2, Kind: StartBlock, ReqID: 2, Model: "b", Block: 0, Device: 0, Part: 1},
		{AtMs: 3, Kind: StartBlock, ReqID: 3, Model: "c", Block: 0, Device: 1},
		{AtMs: 10, Kind: EndBlock, ReqID: 1, Model: "a", Block: 0, Device: 0, Part: 0},
		{AtMs: 12, Kind: EndBlock, ReqID: 2, Model: "b", Block: 0, Device: 0, Part: 1},
		{AtMs: 13, Kind: EndBlock, ReqID: 3, Model: "c", Block: 0, Device: 1},
		{AtMs: 10, Kind: Complete, ReqID: 1, Model: "a"},
		{AtMs: 12, Kind: Complete, ReqID: 2, Model: "b"},
		{AtMs: 13, Kind: Complete, ReqID: 3, Model: "c"},
	}
}

// TestSpanPartitionOverlapLegal: concurrent grants on distinct partitions
// of one device fold clean — exclusivity is per lane, not per device.
func TestSpanPartitionOverlapLegal(t *testing.T) {
	tree := BuildSpans(partitionStream())
	if len(tree.Problems) != 0 {
		t.Fatalf("partition-overlapping stream reported problems: %v", tree.Problems)
	}
	sp := tree.Span(2)
	if sp == nil || len(sp.Intervals) == 0 {
		t.Fatal("req 2 span missing")
	}
	var exec *Interval
	for i := range sp.Intervals {
		if sp.Intervals[i].Phase == PhaseExec {
			exec = &sp.Intervals[i]
		}
	}
	if exec == nil || exec.Part != 1 {
		t.Fatalf("req 2 exec interval did not carry part 1: %+v", exec)
	}
}

// TestSpanSamePartitionOverlapReported: two grants on the SAME partition
// overlapping is still the invariant violation it always was.
func TestSpanSamePartitionOverlapReported(t *testing.T) {
	events := []Event{
		{AtMs: 0, Kind: Arrive, ReqID: 1, Model: "a"},
		{AtMs: 0, Kind: Arrive, ReqID: 2, Model: "b"},
		{AtMs: 1, Kind: StartBlock, ReqID: 1, Model: "a", Device: 0, Part: 1},
		{AtMs: 2, Kind: StartBlock, ReqID: 2, Model: "b", Device: 0, Part: 1},
		{AtMs: 10, Kind: EndBlock, ReqID: 1, Model: "a", Device: 0, Part: 1},
		{AtMs: 12, Kind: EndBlock, ReqID: 2, Model: "b", Device: 0, Part: 1},
	}
	tree := BuildSpans(events)
	if len(tree.Problems) != 1 {
		t.Fatalf("problems = %v, want exactly the same-lane overlap", tree.Problems)
	}
	if !strings.Contains(tree.Problems[0], "device 0 part 1") {
		t.Errorf("problem does not name the lane: %q", tree.Problems[0])
	}
}

// TestPerfettoPartitionLanes: a partitioned tree subdivides each device
// process into per-partition threads with name metadata; an unpartitioned
// tree keeps request-keyed tids with no thread metadata.
func TestPerfettoPartitionLanes(t *testing.T) {
	tree := BuildSpans(partitionStream())
	var buf bytes.Buffer
	if err := tree.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePerfetto(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Cat   string         `json:"cat"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	threadNames := 0
	for _, e := range f.TraceEvents {
		if e.Name == "thread_name" && e.Phase == "M" {
			threadNames++
		}
		if e.Cat == "exec" && e.PID == 0 {
			// Device 0 exec events live on partition-keyed tids.
			if e.TID != 0 && e.TID != 1 {
				t.Errorf("device 0 exec tid = %d, want a partition slot", e.TID)
			}
			if _, ok := e.Args["part"]; !ok {
				t.Errorf("device 0 exec event missing part arg: %+v", e)
			}
		}
	}
	// Lanes seen: (0,0), (0,1), (1,0) => three thread_name records.
	if threadNames != 3 {
		t.Errorf("thread_name records = %d, want 3", threadNames)
	}

	// Unpartitioned: no thread metadata, tids stay request IDs.
	events := partitionStream()
	for i := range events {
		events[i].Part = 0
	}
	buf.Reset()
	if err := BuildSpans(events).WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "thread_name") {
		t.Error("unpartitioned export grew thread metadata")
	}
	if strings.Contains(buf.String(), `"part"`) {
		t.Error("unpartitioned export grew part args")
	}
}
