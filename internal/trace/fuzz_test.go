package trace

import (
	"math"
	"testing"
)

// FuzzSpanBuilder drives the span builder with arbitrary *valid* event
// orderings — a byte-coded mini scheduler over up to three devices with
// arrivals, grants, boundary releases, preemptions and queued sheds, all
// causally ordered — and asserts the span-tree invariants: folding reports
// no problems, every decided request's wait/exec/preempted decomposition
// sums exactly to its lifetime, block counts match the emitted grants, and
// exec time matches the device time actually granted.
func FuzzSpanBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 1, 2, 1, 2, 3}, uint8(1))
	f.Add([]byte{0, 0, 0, 1, 2, 1, 2, 3, 3, 1, 2}, uint8(2))
	f.Add([]byte{0, 1, 3, 0, 1, 2, 2}, uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, devRaw uint8) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		devices := 1 + int(devRaw)%3
		models := []string{"yolov2", "vgg19", "gpt2"}

		type req struct {
			blocks  int // total plan length
			next    int // next block index
			granted int // device currently executing it, -1 if none
			done    bool
		}
		var (
			events  []Event
			reqs    []*req
			now     float64
			open    = make([]int, devices) // req id holding each device, -1 idle
			execMs  = map[int]float64{}    // granted device time per request
			grants  = map[int]int{}        // closed grants per request
			preempt = map[int]int{}
		)
		for i := range open {
			open[i] = -1
		}

		for i, op := range ops {
			now += float64(op%5) * 0.5 // monotone clock, sometimes still
			switch op % 4 {
			case 0: // arrive
				if len(reqs) >= 32 {
					continue
				}
				id := len(reqs)
				r := &req{blocks: 1 + int(op/4)%3, granted: -1}
				reqs = append(reqs, r)
				events = append(events, Event{AtMs: now, Kind: Arrive, ReqID: id,
					Model: models[id%len(models)]})
			case 1: // grant: idle device + a waiting request
				dev := int(op/4) % devices
				if open[dev] != -1 {
					continue
				}
				// Pick the first waiting request, offset by the op byte.
				var waiting []int
				for id, r := range reqs {
					if !r.done && r.granted == -1 {
						waiting = append(waiting, id)
					}
				}
				if len(waiting) == 0 {
					continue
				}
				id := waiting[int(op/4)%len(waiting)]
				r := reqs[id]
				r.granted = dev
				open[dev] = id
				events = append(events, Event{AtMs: now, Kind: StartBlock, ReqID: id,
					Model: models[id%len(models)], Block: r.next, Device: dev})
			case 2: // release at the boundary
				dev := int(op/4) % devices
				id := open[dev]
				if id == -1 {
					continue
				}
				r := reqs[id]
				start := events[lastStart(events, id)].AtMs
				execMs[id] += now - start
				grants[id]++
				events = append(events, Event{AtMs: now, Kind: EndBlock, ReqID: id,
					Model: models[id%len(models)], Block: r.next, Device: dev})
				open[dev] = -1
				r.granted = -1
				r.next++
				if r.next >= r.blocks {
					r.done = true
					events = append(events, Event{AtMs: now, Kind: Complete, ReqID: id,
						Model: models[id%len(models)], Block: r.next - 1})
				} else if i%2 == 0 {
					preempt[id]++
					events = append(events, Event{AtMs: now, Kind: Preempt, ReqID: id,
						Model: models[id%len(models)], Block: r.next})
				}
			case 3: // shed a waiting request
				for id, r := range reqs {
					if !r.done && r.granted == -1 {
						r.done = true
						events = append(events, Event{AtMs: now, Kind: Shed, ReqID: id,
							Model: models[id%len(models)], Block: r.next, Detail: "deadline"})
						break
					}
				}
			}
		}

		tree := BuildSpans(events)
		if len(tree.Problems) != 0 {
			t.Fatalf("valid ordering produced problems: %v", tree.Problems)
		}
		for _, sp := range tree.Requests {
			if sp.Truncated {
				t.Fatalf("req %d truncated in a complete stream", sp.ReqID)
			}
			if sp.Decided() {
				sum := sp.WaitMs + sp.ExecMs + sp.PreemptedMs
				if math.Abs(sum-sp.E2EMs()) > 1e-6 {
					t.Fatalf("req %d: decomposition %v != e2e %v", sp.ReqID, sum, sp.E2EMs())
				}
			}
			if want := grants[sp.ReqID]; sp.Decided() && sp.Blocks != want {
				t.Fatalf("req %d: %d blocks folded, %d grants emitted", sp.ReqID, sp.Blocks, want)
			}
			if math.Abs(sp.ExecMs-execMs[sp.ReqID]) > 1e-6 && sp.Decided() {
				t.Fatalf("req %d: exec %v, granted %v", sp.ReqID, sp.ExecMs, execMs[sp.ReqID])
			}
			if sp.Preemptions != preempt[sp.ReqID] {
				t.Fatalf("req %d: %d preemptions folded, %d emitted", sp.ReqID, sp.Preemptions, preempt[sp.ReqID])
			}
		}
	})
}

// lastStart finds the index of the most recent StartBlock event for req.
func lastStart(events []Event, req int) int {
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].ReqID == req && events[i].Kind == StartBlock {
			return i
		}
	}
	return -1
}
