package trace

import (
	"encoding/json"
	"io"
	"sync"
)

// Ring is a bounded, concurrency-safe ring buffer of recent events — the
// flight recorder behind the splitd /tracez endpoint. When full, each new
// event overwrites the oldest one, so a snapshot always shows the last
// Cap() scheduling decisions without unbounded memory growth.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int  // index the next event is written at
	full  bool // buf has wrapped at least once
	total int  // lifetime events emitted
}

// NewRing returns a ring holding the most recent `capacity` events
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink. No-op on a nil receiver, matching the nil-safe
// Tracer convention.
func (r *Ring) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Len returns the number of events currently held. Nil-safe.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring capacity. Nil-safe.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns the lifetime number of events emitted, including ones
// already overwritten. Nil-safe.
func (r *Ring) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the held events oldest-first. Nil-safe.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// WriteJSONL dumps the current snapshot as JSON lines, oldest-first.
func (r *Ring) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
