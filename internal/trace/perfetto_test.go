package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWritePerfettoRoundTrip exports a small span tree and re-parses it
// with the schema validator: every exec interval and queue gap must come
// back as a complete ("X") event on the right lane.
func TestWritePerfettoRoundTrip(t *testing.T) {
	events := []Event{
		ev(0, Arrive, 0, "long", 0),
		ev(0, StartBlock, 0, "long", 0),
		ev(4, Arrive, 1, "short", 0),
		ev(10, EndBlock, 0, "long", 0),
		ev(10, Preempt, 0, "long", 1),
		ev(10, StartBlock, 1, "short", 0),
		ev(15, EndBlock, 1, "short", 0),
		ev(15, Complete, 1, "short", 0),
		ev(15, StartBlock, 0, "long", 1),
		ev(25, EndBlock, 0, "long", 1),
		ev(25, Complete, 0, "long", 1),
	}
	tree := BuildSpans(events)
	var buf bytes.Buffer
	if err := tree.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidatePerfetto(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no trace events exported")
	}

	var f perfettoFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	execs, waits, instants, metas := 0, 0, 0, 0
	for _, e := range f.TraceEvents {
		switch {
		case e.Phase == "X" && e.Cat == "exec":
			execs++
			if e.PID != 0 { // single-device stream: all exec on device 0
				t.Errorf("exec event on pid %d, want 0", e.PID)
			}
		case e.Phase == "X" && e.Cat == "queue":
			waits++
		case e.Phase == "i":
			instants++
		case e.Phase == "M":
			metas++
		}
	}
	if execs != 3 { // r0 ran 2 blocks, r1 ran 1
		t.Errorf("exec events = %d, want 3", execs)
	}
	if waits != 2 { // r0 preempted once, r1 waited once
		t.Errorf("queue events = %d, want 2", waits)
	}
	if instants != 4 { // 2 arrivals + 2 completions
		t.Errorf("instant events = %d, want 4", instants)
	}
	if metas == 0 {
		t.Error("no lane-naming metadata")
	}
	// Timestamps are microseconds: r0's second block starts at 15 ms.
	found := false
	for _, e := range f.TraceEvents {
		if e.Cat == "exec" && e.TID == 0 && e.TsUs == 15000 {
			found = true
		}
	}
	if !found {
		t.Error("expected an exec event at ts=15000us")
	}
}

// TestValidatePerfettoRejectsGarbage: the validator fails on non-JSON and
// on events missing required fields.
func TestValidatePerfettoRejectsGarbage(t *testing.T) {
	if _, err := ValidatePerfetto([]byte("not json")); err == nil {
		t.Error("non-JSON accepted")
	}
	bad := `{"traceEvents":[{"name":"","ph":"X","ts":1,"pid":0,"tid":0}]}`
	if _, err := ValidatePerfetto([]byte(bad)); err == nil {
		t.Error("nameless event accepted")
	}
	bad = `{"traceEvents":[{"name":"x","ph":"","ts":1,"pid":0,"tid":0}]}`
	if _, err := ValidatePerfetto([]byte(bad)); err == nil {
		t.Error("phaseless event accepted")
	}
	bad = `{"traceEvents":[{"name":"x","ph":"X","ts":-5,"pid":0,"tid":0}]}`
	if _, err := ValidatePerfetto([]byte(bad)); err == nil {
		t.Error("negative timestamp accepted")
	}
}
