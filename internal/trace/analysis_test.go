package trace

import (
	"math"
	"testing"
)

func sampleTrace() *Tracer {
	tr := New()
	tr.Recordf(0, Arrive, 1, "vgg", 0, "")
	tr.Recordf(0, StartBlock, 1, "vgg", 0, "")
	tr.Recordf(10, EndBlock, 1, "vgg", 0, "")
	tr.Recordf(10, StartBlock, 2, "yolo", 0, "")
	tr.Recordf(15, EndBlock, 2, "yolo", 0, "")
	tr.Recordf(15, Complete, 2, "yolo", 0, "")
	tr.Recordf(15, StartBlock, 1, "vgg", 1, "")
	tr.Recordf(25, EndBlock, 1, "vgg", 1, "")
	tr.Recordf(25, Complete, 1, "vgg", 1, "")
	// Idle gap, then another request.
	tr.Recordf(40, StartBlock, 3, "yolo", 0, "")
	tr.Recordf(45, EndBlock, 3, "yolo", 0, "")
	tr.Recordf(45, Complete, 3, "yolo", 0, "")
	return tr
}

func TestSpans(t *testing.T) {
	spans := sampleTrace().Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].ReqID != 1 || spans[0].DurationMs() != 10 {
		t.Errorf("span0 = %+v", spans[0])
	}
	if spans[1].Model != "yolo" || spans[1].StartMs != 10 {
		t.Errorf("span1 = %+v", spans[1])
	}
	if spans[2].Block != 1 {
		t.Errorf("span2 block = %d", spans[2].Block)
	}
}

func TestSpansDropUnpaired(t *testing.T) {
	tr := New()
	tr.Recordf(0, StartBlock, 1, "m", 0, "")
	if len(tr.Spans()) != 0 {
		t.Error("unpaired start produced a span")
	}
}

func TestAnalyze(t *testing.T) {
	a := sampleTrace().Analyze()
	if a.HorizonMs != 45 {
		t.Errorf("horizon = %v", a.HorizonMs)
	}
	if math.Abs(a.BusyMs-30) > 1e-9 {
		t.Errorf("busy = %v", a.BusyMs)
	}
	if math.Abs(a.Utilization-30.0/45) > 1e-9 {
		t.Errorf("utilization = %v", a.Utilization)
	}
	if a.BusyPeriods != 2 {
		t.Errorf("busy periods = %d", a.BusyPeriods)
	}
	if math.Abs(a.MeanBusyPeriodMs-15) > 1e-9 { // (25 + 5) / 2
		t.Errorf("mean busy period = %v", a.MeanBusyPeriodMs)
	}
	if math.Abs(a.PerModelBusyMs["vgg"]-20) > 1e-9 || math.Abs(a.PerModelBusyMs["yolo"]-10) > 1e-9 {
		t.Errorf("per-model busy = %v", a.PerModelBusyMs)
	}
	if a.Completions != 3 {
		t.Errorf("completions = %d", a.Completions)
	}
	if a.String() == "" {
		t.Error("empty render")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := New().Analyze()
	if a.HorizonMs != 0 || a.BusyMs != 0 || a.BusyPeriods != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
}

func TestAnalyzeCountsPreempts(t *testing.T) {
	tr := New()
	tr.Recordf(0, StartBlock, 1, "m", 0, "")
	tr.Recordf(5, EndBlock, 1, "m", 0, "")
	tr.Recordf(5, Preempt, 1, "m", 1, "")
	a := tr.Analyze()
	if a.Preemptions != 1 {
		t.Errorf("preemptions = %d", a.Preemptions)
	}
}
