package zoo

import (
	"strings"
	"testing"

	"split/internal/model"
)

func kindCounts(g *model.Graph) map[model.Kind]int {
	c := map[model.Kind]int{}
	for _, op := range g.Ops {
		c[op.Kind]++
	}
	return c
}

func TestGoogLeNetStructure(t *testing.T) {
	g := MustLoad("googlenet")
	c := kindCounts(g)
	// Stem 4 convs? stem has 3 convs (7x7, 1x1, 3x3); 9 modules × 6 convs = 54;
	// total 57 convs.
	if c[model.Conv] != 57 {
		t.Errorf("convs = %d, want 57", c[model.Conv])
	}
	if c[model.Concat] != 9 {
		t.Errorf("concats = %d, want 9 inception modules", c[model.Concat])
	}
	if c[model.LRN] != 2 {
		t.Errorf("LRNs = %d, want 2", c[model.LRN])
	}
	// Stem 2 + 2 inter-stage + 9 in-branch maxpools = 13.
	if c[model.MaxPool] != 13 {
		t.Errorf("maxpools = %d, want 13", c[model.MaxPool])
	}
}

func TestYOLOv2Structure(t *testing.T) {
	g := MustLoad("yolov2")
	c := kindCounts(g)
	if c[model.Conv] != 23 {
		t.Errorf("convs = %d, want 23", c[model.Conv])
	}
	if c[model.BatchNorm] != 22 || c[model.LeakyReLU] != 22 {
		t.Errorf("bn/leaky = %d/%d, want 22/22", c[model.BatchNorm], c[model.LeakyReLU])
	}
	if c[model.MaxPool] != 5 {
		t.Errorf("maxpools = %d, want 5", c[model.MaxPool])
	}
	if c[model.Concat] != 2 { // passthrough concat + decode concat
		t.Errorf("concats = %d, want 2", c[model.Concat])
	}
	if c[model.Softmax] != 1 || c[model.Sigmoid] != 1 {
		t.Errorf("decode head wrong: softmax=%d sigmoid=%d", c[model.Softmax], c[model.Sigmoid])
	}
}

func TestDenseNetStructure(t *testing.T) {
	g := MustLoad("densenet")
	c := kindCounts(g)
	// DenseNet-121: 58 dense layers × 2 convs + stem + 3 transitions = 120 convs.
	if c[model.Conv] != 58*2+1+3 {
		t.Errorf("convs = %d, want %d", c[model.Conv], 58*2+4)
	}
	if c[model.Concat] != 58 {
		t.Errorf("concats = %d, want 58 dense layers", c[model.Concat])
	}
	if c[model.AvgPool] != 3 {
		t.Errorf("transition avgpools = %d, want 3", c[model.AvgPool])
	}
}

func TestEfficientNetStructure(t *testing.T) {
	g := MustLoad("efficientnet")
	c := kindCounts(g)
	// 16 MBConv blocks, each with one depthwise conv.
	if c[model.DWConv] != 16 {
		t.Errorf("dwconvs = %d, want 16", c[model.DWConv])
	}
	// Stride-1 same-width blocks get residuals: stages contribute
	// (n-1) residuals each: 1+1+2+2+3+0 = ... count must be positive and
	// below the block count.
	if c[model.Add] == 0 || c[model.Add] >= 16 {
		t.Errorf("residual adds = %d", c[model.Add])
	}
	if c[model.Sigmoid] != 16 || c[model.Mul] != 16 {
		t.Errorf("SE gates = %d/%d, want 16/16", c[model.Sigmoid], c[model.Mul])
	}
}

func TestSqueezeNetStructure(t *testing.T) {
	g := MustLoad("squeezenet")
	c := kindCounts(g)
	// 8 fire modules × 3 convs + stem conv + final 1x1 = 26.
	if c[model.Conv] != 26 {
		t.Errorf("convs = %d, want 26", c[model.Conv])
	}
	if c[model.Concat] != 8 {
		t.Errorf("concats = %d, want 8 fire modules", c[model.Concat])
	}
}

func TestShuffleNetStructure(t *testing.T) {
	g := MustLoad("shufflenet")
	c := kindCounts(g)
	if c[model.Shuffle] != 16 {
		t.Errorf("channel shuffles = %d, want 16 units", c[model.Shuffle])
	}
	if c[model.DWConv] != 16 {
		t.Errorf("dwconvs = %d, want 16", c[model.DWConv])
	}
	// 13 stride-1 units use residual Adds; 3 stride-2 units use Concats.
	if c[model.Add] != 13 {
		t.Errorf("residuals = %d, want 13", c[model.Add])
	}
	if c[model.Concat] != 3 {
		t.Errorf("stride-2 concats = %d, want 3", c[model.Concat])
	}
}

func TestOpNamesUniqueAndKindPrefixed(t *testing.T) {
	for _, name := range Names() {
		g := MustLoad(name)
		seen := map[string]bool{}
		for _, op := range g.Ops {
			if seen[op.Name] {
				t.Fatalf("%s: duplicate op name %q", name, op.Name)
			}
			seen[op.Name] = true
			if !strings.HasPrefix(op.Name, string(op.Kind)) {
				t.Fatalf("%s: op %q not prefixed by kind %q", name, op.Name, op.Kind)
			}
		}
	}
}

func TestGPT2LayerNormCount(t *testing.T) {
	g := MustLoad("gpt2")
	c := kindCounts(g)
	// 25 layer norms (2 per layer + final), each contributing one Sqrt.
	if c[model.Sqrt] != 25 {
		t.Errorf("sqrt ops = %d, want 25 layer norms", c[model.Sqrt])
	}
	// 2 gathers in the embedding stem.
	if c[model.Embedding] != 2 {
		t.Errorf("gathers = %d, want 2", c[model.Embedding])
	}
	// Tanh: 12 GELUs + 144 attention... GELU tanh only: 12 per model? One
	// gelu per layer → 12 Tanh.
	if c[model.Tanh] != 12 {
		t.Errorf("tanh ops = %d, want 12 GELUs", c[model.Tanh])
	}
}
