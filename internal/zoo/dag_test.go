package zoo

import (
	"testing"

	"split/internal/model"
	"split/internal/profiler"
)

func TestBenchmarkModelsHaveFullEdgeSets(t *testing.T) {
	for _, name := range BenchmarkModels {
		g := MustLoad(name)
		if len(g.Edges) == 0 {
			t.Errorf("%s: no edges emitted", name)
			continue
		}
		// Every op except sources must have at least one incoming edge, and
		// every op except sinks at least one outgoing edge — otherwise the
		// builder dropped a dependency.
		hasIn := make([]bool, g.NumOps())
		hasOut := make([]bool, g.NumOps())
		for _, e := range g.Edges {
			hasOut[e.From] = true
			hasIn[e.To] = true
		}
		noIn, noOut := 0, 0
		for i := range g.Ops {
			if !hasIn[i] {
				noIn++
			}
			if !hasOut[i] {
				noOut++
			}
		}
		// Sources: model inputs (tok+pos gathers for gpt2, 1 otherwise).
		if noIn > 2 {
			t.Errorf("%s: %d ops with no inputs", name, noIn)
		}
		if noOut != 1 {
			t.Errorf("%s: %d sink ops, want exactly 1", name, noOut)
		}
	}
}

func TestResNetResidualEdgesSpanBottlenecks(t *testing.T) {
	g := MustLoad("resnet50")
	// Identity bottlenecks contribute skip edges spanning 6 ops
	// (entry -> residual Add). Count edges with span >= 6.
	skips := 0
	for _, e := range g.Edges {
		if e.To-e.From >= 6 {
			skips++
		}
	}
	if skips < 12 {
		t.Errorf("found %d long skip edges, want >= 12 identity bottlenecks", skips)
	}
}

func TestYOLOPassthroughEdgeIsLong(t *testing.T) {
	g := MustLoad("yolov2")
	longest := 0
	for _, e := range g.Edges {
		if e.To-e.From > longest {
			longest = e.To - e.From
		}
	}
	// The passthrough connects conv13's leaky (around op 40) to the branch
	// after the detection head (around op 60+): span > 15 ops.
	if longest < 15 {
		t.Errorf("longest edge spans %d ops; passthrough missing", longest)
	}
}

func TestCuttingInsideResidualCostsMore(t *testing.T) {
	g := MustLoad("resnet50")
	p := profiler.New(g, model.DefaultCostModel())
	// Find an identity bottleneck's skip edge and compare a cut inside it
	// to the cut right after its join.
	for _, e := range g.Edges {
		if e.To-e.From == 6 && g.Ops[e.To].Kind == model.Add {
			inside := p.BoundaryMsAt(e.From + 3) // mid-bottleneck
			after := p.BoundaryMsAt(e.To + 2)    // after the join's relu
			if inside <= after {
				t.Errorf("mid-bottleneck cut (%.3f) not costlier than block boundary (%.3f)", inside, after)
			}
			return
		}
	}
	t.Fatal("no identity bottleneck found")
}

func TestGAPlanAvoidsCutsInsideResiduals(t *testing.T) {
	// The deployed 2-block ResNet50 plan must not place its cut across a
	// skip connection: its boundary cost should be within 1.5x of the
	// cheapest interior cut.
	g := MustLoad("resnet50")
	p := profiler.New(g, model.DefaultCostModel())
	minB := p.BoundaryMsAt(1)
	for c := 2; c <= g.NumOps()-1; c++ {
		if b := p.BoundaryMsAt(c); b < minB {
			minB = b
		}
	}
	best, _ := p.Exhaustive(2, profiler.StdDevObjective)
	cut := best.Cuts[0]
	if p.BoundaryMsAt(cut) > 3*minB {
		t.Errorf("even-split cut at %d costs %.3f, min boundary is %.3f — cut crosses a residual",
			cut, p.BoundaryMsAt(cut), minB)
	}
}

func TestGPT2ResidualStructure(t *testing.T) {
	g := MustLoad("gpt2")
	// Each transformer layer has two residual adds whose skip edges span
	// roughly half the 210-op layer: expect >= 24 edges with span >= 20.
	long := 0
	for _, e := range g.Edges {
		if e.To-e.From >= 20 {
			long++
		}
	}
	if long < 24 {
		t.Errorf("gpt2 has %d long-range edges, want >= 24 residuals", long)
	}
}

func TestEdgesDeduplicated(t *testing.T) {
	for _, name := range BenchmarkModels {
		g := MustLoad(name)
		seen := map[model.Edge]bool{}
		for _, e := range g.Edges {
			if seen[e] {
				t.Errorf("%s: duplicate edge %+v", name, e)
			}
			seen[e] = true
		}
	}
}
