package zoo

import (
	"math"
	"testing"

	"split/internal/model"
	"split/internal/stats"
)

func TestTable1OperatorCountsExact(t *testing.T) {
	for name, want := range Table1Ops {
		g := MustLoad(name)
		if got := g.NumOps(); got != want {
			t.Errorf("%s: %d operators, Table 1 says %d", name, got, want)
		}
	}
}

func TestTable1LatenciesExact(t *testing.T) {
	for name, want := range Table1Latency {
		g := MustLoad(name)
		if got := g.TotalTimeMs(); math.Abs(got-want) > 1e-6 {
			t.Errorf("%s: latency %.4f ms, want %.4f", name, got, want)
		}
	}
}

func TestAllModelsValidate(t *testing.T) {
	for _, name := range Names() {
		g := MustLoad(name)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestClassesMatchTable1(t *testing.T) {
	want := map[string]model.RequestClass{
		"yolov2":    model.Short,
		"googlenet": model.Short,
		"resnet50":  model.Long,
		"vgg19":     model.Long,
		"gpt2":      model.Short,
	}
	for name, class := range want {
		if got := MustLoad(name).Class; got != class {
			t.Errorf("%s: class %s, want %s", name, got, class)
		}
	}
}

func TestDomainsMatchTable1(t *testing.T) {
	want := map[string]string{
		"yolov2":    "Object Detection",
		"googlenet": "Image Classification",
		"resnet50":  "Image Classification",
		"vgg19":     "Image Classification",
		"gpt2":      "Text Generation",
	}
	for name, dom := range want {
		if got := MustLoad(name).Domain; got != dom {
			t.Errorf("%s: domain %q, want %q", name, got, dom)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nonexistent"); err == nil {
		t.Error("Load(unknown) succeeded")
	}
}

func TestMustLoadPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLoad(unknown) did not panic")
		}
	}()
	MustLoad("nope")
}

func TestLoadReturnsFreshGraphs(t *testing.T) {
	a := MustLoad("vgg19")
	b := MustLoad("vgg19")
	a.Ops[0].TimeMs = 999
	if b.Ops[0].TimeMs == 999 {
		t.Error("Load shares op slices between calls")
	}
}

func TestLoadDeterministic(t *testing.T) {
	for _, name := range BenchmarkModels {
		a, b := MustLoad(name), MustLoad(name)
		if a.NumOps() != b.NumOps() {
			t.Fatalf("%s: nondeterministic op count", name)
		}
		for i := range a.Ops {
			if a.Ops[i] != b.Ops[i] {
				t.Fatalf("%s: op %d differs between loads", name, i)
			}
		}
	}
}

func TestLoadBenchmarkSet(t *testing.T) {
	set := LoadBenchmarkSet()
	if len(set) != 5 {
		t.Fatalf("benchmark set has %d models", len(set))
	}
	for _, name := range BenchmarkModels {
		if set[name] == nil {
			t.Errorf("missing %s", name)
		}
	}
}

// Observation 1 substrate (§2.4): data volume should broadly decrease along
// CNN graphs — the front third moves more bytes than the back third.
func TestCNNVolumeDecaysFrontToBack(t *testing.T) {
	for _, name := range []string{"vgg19", "resnet50", "googlenet", "alexnet"} {
		g := MustLoad(name)
		n := g.NumOps()
		var front, back float64
		for _, op := range g.Ops[:n/3] {
			front += float64(op.OutBytes)
		}
		for _, op := range g.Ops[2*n/3:] {
			back += float64(op.OutBytes)
		}
		front /= float64(n / 3)
		back /= float64(n - 2*n/3)
		if front <= back {
			t.Errorf("%s: mean front volume %.0f <= back %.0f", name, front, back)
		}
	}
}

// Observation 2 substrate: per-op time is front-heavy in CNNs (big spatial
// dims early), so the time-midpoint lies before the op-count midpoint.
func TestCNNTimeMidpointBeforeOpMidpoint(t *testing.T) {
	for _, name := range []string{"vgg19", "resnet50"} {
		g := MustLoad(name)
		prefix := g.PrefixTimes()
		half := g.TotalTimeMs() / 2
		mid := 0
		for i, p := range prefix {
			if p >= half {
				mid = i
				break
			}
		}
		if mid >= g.NumOps()/2 {
			t.Errorf("%s: time midpoint at op %d of %d — not front-heavy", name, mid, g.NumOps())
		}
	}
}

func TestGPT2StructuralDecomposition(t *testing.T) {
	g := MustLoad("gpt2")
	// 12 layers × 12 heads × 1 softmax per head = 144 softmaxes in attention.
	softmax := 0
	matmul := 0
	for _, op := range g.Ops {
		switch op.Kind {
		case model.Softmax:
			softmax++
		case model.MatMul:
			matmul++
		}
	}
	if softmax != 144 {
		t.Errorf("gpt2 softmax count = %d, want 144", softmax)
	}
	// 4 projection matmuls + 24 per-head matmuls per layer, + lm head.
	if matmul != 12*(4+24)+1 {
		t.Errorf("gpt2 matmul count = %d, want %d", matmul, 12*28+1)
	}
}

func TestVGG19Structure(t *testing.T) {
	g := MustLoad("vgg19")
	counts := map[model.Kind]int{}
	for _, op := range g.Ops {
		counts[op.Kind]++
	}
	if counts[model.Conv] != 16 {
		t.Errorf("vgg19 convs = %d, want 16", counts[model.Conv])
	}
	if counts[model.Gemm] != 3 {
		t.Errorf("vgg19 gemms = %d, want 3", counts[model.Gemm])
	}
	if counts[model.MaxPool] != 5 {
		t.Errorf("vgg19 pools = %d, want 5", counts[model.MaxPool])
	}
	if counts[model.ReLU] != 18 {
		t.Errorf("vgg19 relus = %d, want 18", counts[model.ReLU])
	}
}

func TestResNet50Structure(t *testing.T) {
	g := MustLoad("resnet50")
	counts := map[model.Kind]int{}
	for _, op := range g.Ops {
		counts[op.Kind]++
	}
	// 1 stem + 16×3 bottleneck convs + 4 projections = 53.
	if counts[model.Conv] != 53 {
		t.Errorf("resnet50 convs = %d, want 53", counts[model.Conv])
	}
	if counts[model.Add] != 16 {
		t.Errorf("resnet50 residual adds = %d, want 16", counts[model.Add])
	}
}

func TestConvTimesDominateElementwise(t *testing.T) {
	g := MustLoad("resnet50")
	var convMean, ewMean float64
	var convN, ewN int
	for _, op := range g.Ops {
		switch op.Kind {
		case model.Conv:
			convMean += op.TimeMs
			convN++
		case model.ReLU, model.Add:
			ewMean += op.TimeMs
			ewN++
		}
	}
	convMean /= float64(convN)
	ewMean /= float64(ewN)
	if convMean <= ewMean {
		t.Errorf("conv mean %.4f <= elementwise mean %.4f", convMean, ewMean)
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(Table1Latency) {
		t.Fatalf("Names() has %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted at %d", i)
		}
	}
}

func TestProfilingModelsAllLoad(t *testing.T) {
	for _, name := range ProfilingModels {
		if _, err := Load(name); err != nil {
			t.Errorf("profiling model %s: %v", name, err)
		}
	}
}

func TestOpTimesReasonablySpread(t *testing.T) {
	// No op should dominate a model (splitting would be impossible).
	for _, name := range BenchmarkModels {
		g := MustLoad(name)
		times := make([]float64, g.NumOps())
		for i, op := range g.Ops {
			times[i] = op.TimeMs
		}
		if frac := stats.Max(times) / g.TotalTimeMs(); frac > 0.45 {
			t.Errorf("%s: single op holds %.0f%% of total time", name, frac*100)
		}
	}
}
