// Package zoo provides synthetic operator-level graphs of the deep learning
// models evaluated in the SPLIT paper.
//
// The paper profiles real ONNX models from the ONNX model zoo on a Jetson
// Nano (§3.1). That substrate is unavailable here, so each builder
// reconstructs the model's architecture layer by layer — convolution shapes,
// feature map sizes, transformer decompositions — computes per-operator
// FLOPs and tensor volumes from those shapes, derives a raw execution time
// from a roofline-style device model, and finally calibrates the graph so
// its total latency matches Table 1 of the paper. Operator counts for the
// five benchmark models match Table 1 exactly:
//
//	YOLOv2     84 ops   10.80 ms  Object Detection      Short
//	GoogLeNet 142 ops   13.20 ms  Image Classification  Short
//	ResNet50  122 ops   28.35 ms  Image Classification  Long
//	VGG19      44 ops   67.50 ms  Image Classification  Long
//	GPT-2    2534 ops   20.40 ms  Text Generation       Short
//
// Builders also emit the full data-dependency DAG (§2.2): residual
// connections in ResNet/ShuffleNet/EfficientNet/GPT-2, inception branches in
// GoogLeNet, the passthrough in YOLOv2 and dense connectivity in DenseNet.
// Cut boundary volumes therefore account for every tensor crossing a cut,
// so splitting inside a skip connection is correctly more expensive than
// splitting between blocks.
//
// The additional §3.1 profiling-study models (AlexNet, SqueezeNetv1,
// ShuffleNet, DenseNet, EfficientNet) are provided with realistic
// architectures and plausible Nano latencies.
package zoo

import (
	"fmt"
	"sort"

	"split/internal/model"
)

// Device throughput constants for the raw (pre-calibration) cost model.
// Only the *relative* per-op times they induce matter: every graph is scaled
// to its Table 1 latency afterwards.
const (
	flopsPerMs    = 2.35e8 // ~235 GFLOP/s effective compute
	memBytesPerMs = 6.0e6  // ~6 GB/s effective memory traffic
	kernelFixedMs = 0.004  // ~4 µs kernel launch overhead
	bytesPerElem  = 4      // fp32 tensors
)

// Table1Latency maps model name to the isolated latency (ms) from Table 1,
// or to our chosen calibration for the extra profiling-study models.
var Table1Latency = map[string]float64{
	"yolov2":       10.80,
	"googlenet":    13.20,
	"resnet50":     28.35,
	"vgg19":        67.50,
	"gpt2":         20.40,
	"alexnet":      9.20,
	"squeezenet":   5.10,
	"shufflenet":   6.30,
	"densenet":     33.80,
	"efficientnet": 15.60,
}

// Table1Ops maps the five benchmark models to their Table 1 operator counts.
var Table1Ops = map[string]int{
	"yolov2":    84,
	"googlenet": 142,
	"resnet50":  122,
	"vgg19":     44,
	"gpt2":      2534,
}

// BenchmarkModels lists the five models used in the paper's evaluation
// (§5.1), in Table 1 order.
var BenchmarkModels = []string{"yolov2", "googlenet", "resnet50", "vgg19", "gpt2"}

// ProfilingModels lists the models of the §3.1 large-scale profiling study.
var ProfilingModels = []string{
	"vgg19", "resnet50", "alexnet", "squeezenet", "shufflenet",
	"densenet", "googlenet", "yolov2", "efficientnet", "gpt2",
}

// Load builds the named model. The graph is freshly constructed on every
// call, so callers may mutate it freely.
func Load(name string) (*model.Graph, error) {
	switch name {
	case "yolov2":
		return YOLOv2(), nil
	case "googlenet":
		return GoogLeNet(), nil
	case "resnet50":
		return ResNet50(), nil
	case "vgg19":
		return VGG19(), nil
	case "gpt2":
		return GPT2(), nil
	case "alexnet":
		return AlexNet(), nil
	case "squeezenet":
		return SqueezeNet(), nil
	case "shufflenet":
		return ShuffleNet(), nil
	case "densenet":
		return DenseNet(), nil
	case "efficientnet":
		return EfficientNet(), nil
	}
	return nil, fmt.Errorf("zoo: unknown model %q", name)
}

// MustLoad is Load that panics on error, for use in tests and examples where
// the name is a compile-time constant.
func MustLoad(name string) *model.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Names returns all model names in the zoo, sorted.
func Names() []string {
	names := make([]string, 0, len(Table1Latency))
	for n := range Table1Latency {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadBenchmarkSet loads the five evaluation models keyed by name.
func LoadBenchmarkSet() map[string]*model.Graph {
	set := make(map[string]*model.Graph, len(BenchmarkModels))
	for _, n := range BenchmarkModels {
		set[n] = MustLoad(n)
	}
	return set
}

// ---------------------------------------------------------------------------
// builder: incremental graph construction with shape and dependency tracking
// ---------------------------------------------------------------------------

// builder constructs a CNN graph while tracking the current feature map
// shape (channels, height, width) and the index of the operator whose output
// is the current cursor tensor. Every method appends exactly the ops it
// names, computing FLOPs, output volume and raw time from the shape, and
// records data-dependency edges.
type builder struct {
	g       *model.Graph
	c, h, w int // current feature map shape
	last    int // index of the op producing the cursor tensor; -1 = model input
	counts  map[model.Kind]int
}

func newBuilder(name, domain string, class model.RequestClass, c, h, w int) *builder {
	return &builder{
		g:      &model.Graph{Name: name, Domain: domain, Class: class},
		c:      c,
		h:      h,
		w:      w,
		last:   -1,
		counts: make(map[model.Kind]int),
	}
}

func (b *builder) outBytes() int64 {
	return int64(b.c*b.h*b.w) * bytesPerElem
}

// rawTime derives the pre-calibration execution time of an op from its
// compute and memory demand.
func rawTime(flops, bytes int64) float64 {
	return float64(flops)/flopsPerMs + float64(bytes)/memBytesPerMs + kernelFixedMs
}

// addFrom appends an op consuming the outputs of the given ops (deduped;
// -1 inputs, i.e. the model input, are skipped) and moves the cursor to it.
// It returns the new op's index.
func (b *builder) addFrom(inputs []int, kind model.Kind, flops, moveBytes int64) int {
	b.counts[kind]++
	idx := len(b.g.Ops)
	b.g.Ops = append(b.g.Ops, model.Op{
		Name:     fmt.Sprintf("%s_%d", kind, b.counts[kind]),
		Kind:     kind,
		TimeMs:   rawTime(flops, moveBytes),
		OutBytes: b.outBytes(),
		FLOPs:    flops,
	})
	seen := map[int]bool{}
	for _, in := range inputs {
		if in >= 0 && !seen[in] {
			seen[in] = true
			b.g.Edges = append(b.g.Edges, model.Edge{From: in, To: idx})
		}
	}
	b.last = idx
	return idx
}

// add appends a chain op consuming the cursor tensor.
func (b *builder) add(kind model.Kind, flops, moveBytes int64) int {
	return b.addFrom([]int{b.last}, kind, flops, moveBytes)
}

func convOut(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// conv appends a convolution with outC filters of size k×k.
func (b *builder) conv(outC, k, stride, pad int) int {
	inC, inH, inW := b.c, b.h, b.w
	outH := convOut(inH, k, stride, pad)
	outW := convOut(inW, k, stride, pad)
	flops := int64(2) * int64(k*k*inC) * int64(outC) * int64(outH*outW)
	weights := int64(k*k*inC*outC) * bytesPerElem
	inB := int64(inC*inH*inW) * bytesPerElem
	b.c, b.h, b.w = outC, outH, outW
	return b.add(model.Conv, flops, inB+weights+b.outBytes())
}

// dwconv appends a depthwise convolution (channel count unchanged).
func (b *builder) dwconv(k, stride, pad int) int {
	inC, inH, inW := b.c, b.h, b.w
	outH := convOut(inH, k, stride, pad)
	outW := convOut(inW, k, stride, pad)
	flops := int64(2*k*k) * int64(inC) * int64(outH*outW)
	weights := int64(k*k*inC) * bytesPerElem
	inB := int64(inC*inH*inW) * bytesPerElem
	b.h, b.w = outH, outW
	return b.add(model.DWConv, flops, inB+weights+b.outBytes())
}

// elementwise appends a cheap pointwise op (activation, bn, ...).
func (b *builder) elementwise(kind model.Kind) int {
	n := int64(b.c * b.h * b.w)
	return b.add(kind, n, 2*n*bytesPerElem)
}

func (b *builder) relu() int    { return b.elementwise(model.ReLU) }
func (b *builder) leaky() int   { return b.elementwise(model.LeakyReLU) }
func (b *builder) bn() int      { return b.elementwise(model.BatchNorm) }
func (b *builder) sigmoid() int { return b.elementwise(model.Sigmoid) }
func (b *builder) swish() int   { return b.elementwise(model.Swish) }

// residual appends an Add joining the cursor tensor with the tensor produced
// by op `from` (the skip connection).
func (b *builder) residual(from int) int {
	n := int64(b.c * b.h * b.w)
	return b.addFrom([]int{b.last, from}, model.Add, n, 3*n*bytesPerElem)
}

func (b *builder) lrn() int {
	n := int64(b.c * b.h * b.w)
	return b.add(model.LRN, 5*n, 2*n*bytesPerElem) // cross-channel window of ~5
}

func (b *builder) maxpool(k, stride, pad int) int {
	n := int64(b.c * b.h * b.w)
	b.h = convOut(b.h, k, stride, pad)
	b.w = convOut(b.w, k, stride, pad)
	return b.add(model.MaxPool, int64(k*k)*int64(b.c*b.h*b.w), n*bytesPerElem+b.outBytes())
}

func (b *builder) avgpool(k, stride, pad int) int {
	n := int64(b.c * b.h * b.w)
	b.h = convOut(b.h, k, stride, pad)
	b.w = convOut(b.w, k, stride, pad)
	return b.add(model.AvgPool, int64(k*k)*int64(b.c*b.h*b.w), n*bytesPerElem+b.outBytes())
}

func (b *builder) globalAvgPool() int {
	n := int64(b.c * b.h * b.w)
	b.h, b.w = 1, 1
	return b.add(model.GlobalAvg, n, n*bytesPerElem+b.outBytes())
}

// concatFrom appends a Concat of the given source ops. The caller must set
// the output channel count first (b.c).
func (b *builder) concatFrom(inputs []int) int {
	n := int64(b.c * b.h * b.w)
	return b.addFrom(inputs, model.Concat, n, 2*n*bytesPerElem)
}

func (b *builder) flatten() int {
	n := int64(b.c * b.h * b.w)
	b.c, b.h, b.w = b.c*b.h*b.w, 1, 1
	return b.add(model.Flatten, n, 2*n*bytesPerElem)
}

// gemm appends a fully connected layer to `out` features.
func (b *builder) gemm(out int) int {
	in := b.c * b.h * b.w
	flops := int64(2) * int64(in) * int64(out)
	weights := int64(in*out) * bytesPerElem
	b.c, b.h, b.w = out, 1, 1
	return b.add(model.Gemm, flops, weights+int64(in+out)*bytesPerElem)
}

func (b *builder) softmax() int {
	n := int64(b.c * b.h * b.w)
	return b.add(model.Softmax, 4*n, 2*n*bytesPerElem)
}

func (b *builder) reshape() int {
	n := int64(b.c * b.h * b.w)
	return b.add(model.Reshape, 0, 2*n*bytesPerElem)
}

func (b *builder) transpose() int {
	n := int64(b.c * b.h * b.w)
	return b.add(model.Transpose, 0, 2*n*bytesPerElem)
}

func (b *builder) slice(newC int) int {
	b.c = newC
	n := int64(b.c * b.h * b.w)
	return b.add(model.Slice, 0, 2*n*bytesPerElem)
}

func (b *builder) shuffle() int {
	n := int64(b.c * b.h * b.w)
	return b.add(model.Shuffle, 0, 2*n*bytesPerElem)
}

// finish validates, calibrates to the Table 1 latency and returns the graph.
func (b *builder) finish() *model.Graph {
	target, ok := Table1Latency[b.g.Name]
	if !ok {
		panic(fmt.Sprintf("zoo: no calibration latency for %s", b.g.Name))
	}
	b.g.ScaleTo(target)
	if err := b.g.Validate(); err != nil {
		panic(err)
	}
	return b.g
}

// ---------------------------------------------------------------------------
// VGG19 — 44 ops, 67.5 ms, Long (pure chain)
// ---------------------------------------------------------------------------

// VGG19 builds the 16-conv/3-FC VGG-19 graph: 16 Conv + 18 ReLU + 5 MaxPool
// + 1 Flatten + 3 Gemm + 1 Softmax = 44 operators.
func VGG19() *model.Graph {
	b := newBuilder("vgg19", "Image Classification", model.Long, 3, 224, 224)
	block := func(convs, ch int) {
		for i := 0; i < convs; i++ {
			b.conv(ch, 3, 1, 1)
			b.relu()
		}
		b.maxpool(2, 2, 0)
	}
	block(2, 64)
	block(2, 128)
	block(4, 256)
	block(4, 512)
	block(4, 512)
	b.flatten()
	b.gemm(4096)
	b.relu()
	b.gemm(4096)
	b.relu()
	b.gemm(1000)
	b.softmax()
	return b.finish()
}

// ---------------------------------------------------------------------------
// ResNet50 — 122 ops, 28.35 ms, Long (residual skip connections)
// ---------------------------------------------------------------------------

// ResNet50 builds the standard [3,4,6,3] bottleneck ResNet-50 with folded
// batch norm: stem (Conv+ReLU+MaxPool), 16 bottlenecks (7 ops each, 8 with a
// projection shortcut), GlobalAveragePool + Flatten + Gemm = 122 operators.
// Identity bottlenecks carry a skip edge from the block entry to the
// residual Add, so a cut inside a bottleneck must also transfer the entry
// tensor.
func ResNet50() *model.Graph {
	b := newBuilder("resnet50", "Image Classification", model.Long, 3, 224, 224)
	b.conv(64, 7, 2, 3)
	b.relu()
	b.maxpool(3, 2, 1)

	bottleneck := func(mid, out, stride int, project bool) {
		entry := b.last
		b.conv(mid, 1, stride, 0)
		b.relu()
		b.conv(mid, 3, 1, 1)
		b.relu()
		mainOut := b.conv(out, 1, 1, 0)
		skip := entry
		if project {
			// Projection shortcut: a 1x1 conv on the block input running as
			// a parallel branch from entry.
			b.last = entry
			entryC := b.c
			b.c = out // projection emits the block's output shape
			skip = b.conv(out, 1, 1, 0)
			_ = entryC
			b.last = mainOut
		}
		b.residual(skip)
		b.relu()
	}
	stage := func(n, mid, out, stride int) {
		bottleneck(mid, out, stride, true)
		for i := 1; i < n; i++ {
			bottleneck(mid, out, 1, false)
		}
	}
	stage(3, 64, 256, 1)
	stage(4, 128, 512, 2)
	stage(6, 256, 1024, 2)
	stage(3, 512, 2048, 2)

	b.globalAvgPool()
	b.flatten()
	b.gemm(1000)
	return b.finish()
}

// ---------------------------------------------------------------------------
// GoogLeNet — 142 ops, 13.2 ms, Short (four-way inception branches)
// ---------------------------------------------------------------------------

// GoogLeNet builds Inception-v1: a 10-op stem, nine 14-op inception modules
// with two interleaved MaxPools, and a 4-op classifier head = 142 operators.
// Each module's four branches all read the module input and join at a
// Concat, so cuts inside a module cross several tensors.
func GoogLeNet() *model.Graph {
	b := newBuilder("googlenet", "Image Classification", model.Short, 3, 224, 224)
	// Stem: conv7x7 + relu + maxpool + lrn + conv1x1 + relu + conv3x3 + relu + lrn + maxpool.
	b.conv(64, 7, 2, 3)
	b.relu()
	b.maxpool(3, 2, 1)
	b.lrn()
	b.conv(64, 1, 1, 0)
	b.relu()
	b.conv(192, 3, 1, 1)
	b.relu()
	b.lrn()
	b.maxpool(3, 2, 1)

	// inception appends a 14-op module: four parallel branches in sequential
	// execution order, each branching from the module entry, ending in
	// Concat. Branches: 1x1; 1x1→3x3; 1x1→5x5; maxpool→1x1.
	inception := func(c1, r3, c3, r5, c5, cp int) {
		entry := b.last
		inC, h, w := b.c, b.h, b.w
		var outs []int
		branch := func(f func() int) {
			b.last = entry
			b.c, b.h, b.w = inC, h, w
			outs = append(outs, f())
		}
		branch(func() int { b.conv(c1, 1, 1, 0); return b.relu() })
		branch(func() int { b.conv(r3, 1, 1, 0); b.relu(); b.conv(c3, 3, 1, 1); return b.relu() })
		branch(func() int { b.conv(r5, 1, 1, 0); b.relu(); b.conv(c5, 5, 1, 2); return b.relu() })
		branch(func() int { b.maxpool(3, 1, 1); b.conv(cp, 1, 1, 0); return b.relu() })
		b.c = c1 + c3 + c5 + cp
		b.concatFrom(outs)
	}

	inception(64, 96, 128, 16, 32, 32)   // 3a -> 256
	inception(128, 128, 192, 32, 96, 64) // 3b -> 480
	b.maxpool(3, 2, 1)
	inception(192, 96, 208, 16, 48, 64)    // 4a -> 512
	inception(160, 112, 224, 24, 64, 64)   // 4b -> 512
	inception(128, 128, 256, 24, 64, 64)   // 4c -> 512
	inception(112, 144, 288, 32, 64, 64)   // 4d -> 528
	inception(256, 160, 320, 32, 128, 128) // 4e -> 832
	b.maxpool(3, 2, 1)
	inception(256, 160, 320, 32, 128, 128) // 5a -> 832
	inception(384, 192, 384, 48, 128, 128) // 5b -> 1024

	b.globalAvgPool()
	b.flatten()
	b.gemm(1000)
	b.softmax()
	return b.finish()
}

// ---------------------------------------------------------------------------
// YOLOv2 — 84 ops, 10.8 ms, Short (passthrough/reorg skip)
// ---------------------------------------------------------------------------

// YOLOv2 builds the Darknet-19-based YOLOv2 detector at 416×416: 23
// convolutions (22 with BatchNorm+LeakyReLU), 5 MaxPools, the passthrough
// reorg (Reshape/Transpose/Reshape + Concat) and an 8-op region decode head
// = 84 operators. The passthrough edge spans 20+ operators, making mid-head
// cuts expensive.
func YOLOv2() *model.Graph {
	b := newBuilder("yolov2", "Object Detection", model.Short, 3, 416, 416)
	cbl := func(outC, k int) int { // conv + bn + leaky
		pad := 0
		if k == 3 {
			pad = 1
		}
		b.conv(outC, k, 1, pad)
		b.bn()
		return b.leaky()
	}
	cbl(32, 3)
	b.maxpool(2, 2, 0)
	cbl(64, 3)
	b.maxpool(2, 2, 0)
	cbl(128, 3)
	cbl(64, 1)
	cbl(128, 3)
	b.maxpool(2, 2, 0)
	cbl(256, 3)
	cbl(128, 1)
	cbl(256, 3)
	b.maxpool(2, 2, 0)
	cbl(512, 3)
	cbl(256, 1)
	cbl(512, 3)
	cbl(256, 1)
	pass := cbl(512, 3) // conv13 output: passthrough source (26x26x512)
	passC, passH, passW := b.c, b.h, b.w
	b.maxpool(2, 2, 0)
	cbl(1024, 3)
	cbl(512, 1)
	cbl(1024, 3)
	cbl(512, 1)
	cbl(1024, 3)
	// Detection head.
	cbl(1024, 3)
	head := cbl(1024, 3)
	headC, headH, headW := b.c, b.h, b.w
	// Passthrough branch: 1x1 conv on conv13 output, then reorg to 13x13.
	b.last = pass
	b.c, b.h, b.w = passC, passH, passW
	cbl(64, 1)
	b.reshape()
	b.transpose()
	b.c, b.h, b.w = 64*4, passH/2, passW/2
	reorg := b.reshape()
	// Concat passthrough with head.
	b.c, b.h, b.w = headC+256, headH, headW
	b.concatFrom([]int{head, reorg})
	cbl(1024, 3)
	// Final 1x1 conv to 5 anchors × (5+20) channels, no activation.
	b.conv(125, 1, 1, 0)
	// Region decode: reshape, slice xy, sigmoid, slice wh, mul(exp approx),
	// slice class, softmax, concat.
	full := b.c
	dec := b.reshape()
	b.slice(10) // xy for 5 anchors
	xy := b.sigmoid()
	b.last = dec
	b.c = full
	b.slice(10) // wh
	wh := b.elementwise(model.Mul)
	b.last = dec
	b.c = full
	b.slice(100) // class scores
	cls := b.softmax()
	b.c = full
	b.concatFrom([]int{xy, wh, cls})
	return b.finish()
}

// ---------------------------------------------------------------------------
// GPT-2 — 2534 ops, 20.4 ms, Short (transformer residual structure)
// ---------------------------------------------------------------------------

// gptDims holds GPT-2-small transformer dimensions.
type gptDims struct {
	seq, hidden, heads, ffn int
}

// gpt2Dims are GPT-2-small dimensions with a 64-token context, matching a
// single short text-generation forward pass.
var gpt2Dims = gptDims{seq: 64, hidden: 768, heads: 12, ffn: 3072}

// tbuilder builds transformer graphs where tensors are (seq × features),
// tracking dependencies the same way builder does.
type tbuilder struct {
	g      *model.Graph
	seq    int
	feat   int // current feature width
	last   int
	counts map[model.Kind]int
}

func newTBuilder(name, domain string, class model.RequestClass, seq, feat int) *tbuilder {
	return &tbuilder{
		g:      &model.Graph{Name: name, Domain: domain, Class: class},
		seq:    seq,
		feat:   feat,
		last:   -1,
		counts: make(map[model.Kind]int),
	}
}

func (t *tbuilder) outBytes() int64 {
	return int64(t.seq*t.feat) * bytesPerElem
}

func (t *tbuilder) addFrom(inputs []int, kind model.Kind, flops, moveBytes int64) int {
	t.counts[kind]++
	idx := len(t.g.Ops)
	t.g.Ops = append(t.g.Ops, model.Op{
		Name:     fmt.Sprintf("%s_%d", kind, t.counts[kind]),
		Kind:     kind,
		TimeMs:   rawTime(flops, moveBytes),
		OutBytes: t.outBytes(),
		FLOPs:    flops,
	})
	seen := map[int]bool{}
	for _, in := range inputs {
		if in >= 0 && !seen[in] {
			seen[in] = true
			t.g.Edges = append(t.g.Edges, model.Edge{From: in, To: idx})
		}
	}
	t.last = idx
	return idx
}

func (t *tbuilder) add(kind model.Kind, flops, moveBytes int64) int {
	return t.addFrom([]int{t.last}, kind, flops, moveBytes)
}

// matmul appends a (seq×feat)·(feat×out) matrix multiply.
func (t *tbuilder) matmul(out int) int {
	flops := int64(2) * int64(t.seq) * int64(t.feat) * int64(out)
	weights := int64(t.feat*out) * bytesPerElem
	in := t.outBytes()
	t.feat = out
	return t.add(model.MatMul, flops, in+weights+t.outBytes())
}

// ew appends a pointwise op over the current tensor.
func (t *tbuilder) ew(kind model.Kind) int {
	n := int64(t.seq * t.feat)
	return t.add(kind, n, 2*n*bytesPerElem)
}

// ewFrom appends a pointwise op consuming specific inputs.
func (t *tbuilder) ewFrom(inputs []int, kind model.Kind) int {
	n := int64(t.seq * t.feat)
	return t.addFrom(inputs, kind, n, 2*n*bytesPerElem)
}

// layerNorm appends the 9-op decomposed LayerNormalization used by the ONNX
// GPT-2 export: ReduceMean, Sub, Mul(square), ReduceMean, Add(eps), Sqrt,
// Div, Mul(gamma), Add(beta). The Sub and Div reference the input and the
// centered tensor respectively, creating short intra-LN skips.
func (t *tbuilder) layerNorm() int {
	x := t.last
	mean := t.ew(model.ReduceMean)
	sub := t.ewFrom([]int{x, mean}, model.Sub)
	t.ew(model.Mul)        // square
	t.ew(model.ReduceMean) // variance
	t.ew(model.Add)        // + eps
	std := t.ew(model.Sqrt)
	t.ewFrom([]int{sub, std}, model.Div)
	t.ew(model.Mul)        // gamma
	return t.ew(model.Add) // beta
}

// gelu appends the 8-op tanh-approximation GELU decomposition; the final
// products reference the GELU input.
func (t *tbuilder) gelu() int {
	x := t.last
	t.ew(model.Mul)                       // x*x
	t.ew(model.Mul)                       // x^3
	t.ew(model.Mul)                       // 0.044715*x^3
	t.ewFrom([]int{t.last, x}, model.Add) // x + ...
	t.ew(model.Tanh)
	t.ew(model.Add)                       // 1 + tanh
	t.ewFrom([]int{t.last, x}, model.Mul) // x * (...)
	return t.ew(model.Mul)                // 0.5 * ...
}

// attentionHead appends the 14 per-head ops of the decomposed multi-head
// attention, reading the shared q/k/v tensors: slice+reshape of q, k and v,
// transpose k, matmul qk, div scale, add mask, softmax, matmul av,
// transpose out, reshape out. It returns the head output index.
func (t *tbuilder) attentionHead(q, k, v, headDim int) int {
	full := t.feat
	perHeadFrom := func(in int, kind model.Kind) int {
		n := int64(t.seq * headDim)
		t.feat = headDim
		return t.addFrom([]int{in}, kind, n, 2*n*bytesPerElem)
	}
	perHead := func(kind model.Kind) int {
		return perHeadFrom(t.last, kind)
	}
	perHeadFrom(q, model.Slice)
	qr := perHead(model.Reshape)
	perHeadFrom(k, model.Slice)
	kr := perHead(model.Reshape)
	perHeadFrom(v, model.Slice)
	vr := perHead(model.Reshape)
	kt := perHeadFrom(kr, model.Transpose) // k^T
	// qk^T: (seq×d)·(d×seq) -> seq×seq scores
	qkFlops := int64(2) * int64(t.seq) * int64(headDim) * int64(t.seq)
	scoreBytes := int64(t.seq*t.seq) * bytesPerElem
	t.addFrom([]int{qr, kt}, model.MatMul, qkFlops, 2*int64(t.seq*headDim)*bytesPerElem+scoreBytes)
	t.add(model.Div, int64(t.seq*t.seq), 2*scoreBytes)
	t.add(model.Add, int64(t.seq*t.seq), 2*scoreBytes)
	sm := t.add(model.Softmax, 4*int64(t.seq*t.seq), 2*scoreBytes)
	// attn·v: (seq×seq)·(seq×d)
	avFlops := int64(2) * int64(t.seq) * int64(t.seq) * int64(headDim)
	t.addFrom([]int{sm, vr}, model.MatMul, avFlops, scoreBytes+2*int64(t.seq*headDim)*bytesPerElem)
	perHead(model.Transpose)
	out := perHead(model.Reshape)
	t.feat = full
	return out
}

// transformerLayer appends one 210-op decoded GPT-2 block: LN(9) + QKV
// matmul+bias(2) + split(3) + KV-cache concat(2) + 12 heads × 14 + head
// concat(1) + proj matmul+bias(2) + residual(1) + LN(9) + MLP
// (matmul+bias+gelu8+matmul+bias = 12) + residual(1).
func (t *tbuilder) transformerLayer(d gptDims) {
	headDim := d.hidden / d.heads
	entry := t.last
	t.layerNorm() // 9
	t.matmul(3 * d.hidden)
	qkv := t.ew(model.Add) // qkv bias
	t.feat = d.hidden
	q := t.ewFrom([]int{qkv}, model.Slice)
	k := t.ewFrom([]int{qkv}, model.Slice)
	v := t.ewFrom([]int{qkv}, model.Slice)
	kc := t.ewFrom([]int{k}, model.Concat) // kv-cache concat k
	vc := t.ewFrom([]int{v}, model.Concat) // kv-cache concat v
	heads := make([]int, 0, d.heads)
	for h := 0; h < d.heads; h++ {
		heads = append(heads, t.attentionHead(q, kc, vc, headDim))
	}
	t.ewFrom(heads, model.Concat) // merge heads
	t.matmul(d.hidden)
	t.ew(model.Add)                                   // proj bias
	res1 := t.ewFrom([]int{t.last, entry}, model.Add) // residual
	t.layerNorm()                                     // 9
	t.matmul(d.ffn)
	t.ew(model.Add) // ffn bias
	t.gelu()        // 8
	t.matmul(d.hidden)
	t.ew(model.Add)                          // ffn proj bias
	t.ewFrom([]int{t.last, res1}, model.Add) // residual
}

// GPT2 builds the decomposed GPT-2-small graph: 3-op embedding stem
// (Gather wte, Gather wpe, Add), 12 × 210-op transformer layers, and an
// 11-op head (LayerNorm 9 + lm-head MatMul + Reshape) = 2534 operators.
func GPT2() *model.Graph {
	d := gpt2Dims
	t := newTBuilder("gpt2", "Text Generation", model.Short, d.seq, d.hidden)
	// Embedding stem: the position gather runs as a parallel branch off the
	// model input and joins the token gather at the Add.
	tok := t.ew(model.Embedding) // token embedding gather
	t.last = -1
	pos := t.ew(model.Embedding) // position embedding gather
	t.ewFrom([]int{tok, pos}, model.Add)
	for l := 0; l < 12; l++ {
		t.transformerLayer(d)
	}
	t.layerNorm()
	// LM head: hidden -> vocab projection (tied weights).
	t.matmul(50257)
	t.feat = d.hidden // restore nominal width for OutBytes of the final reshape
	t.ew(model.Reshape)

	t.g.ScaleTo(Table1Latency["gpt2"])
	if err := t.g.Validate(); err != nil {
		panic(err)
	}
	return t.g
}

// ---------------------------------------------------------------------------
// Profiling-study extras (§3.1): AlexNet, SqueezeNet, ShuffleNet, DenseNet,
// EfficientNet. Operator counts are architecture-faithful but not pinned.
// ---------------------------------------------------------------------------

// AlexNet builds the classic 5-conv/3-FC AlexNet with LRN (pure chain).
func AlexNet() *model.Graph {
	b := newBuilder("alexnet", "Image Classification", model.Short, 3, 227, 227)
	b.conv(96, 11, 4, 0)
	b.relu()
	b.lrn()
	b.maxpool(3, 2, 0)
	b.conv(256, 5, 1, 2)
	b.relu()
	b.lrn()
	b.maxpool(3, 2, 0)
	b.conv(384, 3, 1, 1)
	b.relu()
	b.conv(384, 3, 1, 1)
	b.relu()
	b.conv(256, 3, 1, 1)
	b.relu()
	b.maxpool(3, 2, 0)
	b.flatten()
	b.gemm(4096)
	b.relu()
	b.gemm(4096)
	b.relu()
	b.gemm(1000)
	b.softmax()
	return b.finish()
}

// SqueezeNet builds SqueezeNet v1.1 with its eight fire modules (two-way
// expand branches joined by Concat).
func SqueezeNet() *model.Graph {
	b := newBuilder("squeezenet", "Image Classification", model.Short, 3, 224, 224)
	b.conv(64, 3, 2, 0)
	b.relu()
	b.maxpool(3, 2, 0)
	fire := func(squeeze, expand int) {
		b.conv(squeeze, 1, 1, 0)
		sq := b.relu()
		inC, h, w := b.c, b.h, b.w
		b.conv(expand, 1, 1, 0)
		e1 := b.relu()
		b.last = sq
		b.c, b.h, b.w = inC, h, w
		b.conv(expand, 3, 1, 1)
		e3 := b.relu()
		b.c = 2 * expand
		b.concatFrom([]int{e1, e3})
	}
	fire(16, 64)
	fire(16, 64)
	b.maxpool(3, 2, 0)
	fire(32, 128)
	fire(32, 128)
	b.maxpool(3, 2, 0)
	fire(48, 192)
	fire(48, 192)
	fire(64, 256)
	fire(64, 256)
	b.conv(1000, 1, 1, 0)
	b.relu()
	b.globalAvgPool()
	b.softmax()
	return b.finish()
}

// ShuffleNet builds ShuffleNet v1 (g=3) with channel shuffle units and
// residual joins.
func ShuffleNet() *model.Graph {
	b := newBuilder("shufflenet", "Image Classification", model.Short, 3, 224, 224)
	b.conv(24, 3, 2, 1)
	b.relu()
	b.maxpool(3, 2, 1)
	unit := func(out, stride int) {
		entry := b.last
		b.conv(out/4, 1, 1, 0) // grouped 1x1 (modelled as conv)
		b.relu()
		b.shuffle()
		b.dwconv(3, stride, 1)
		b.bn()
		main := b.conv(out, 1, 1, 0)
		if stride == 1 {
			b.residual(entry)
		} else {
			b.concatFrom([]int{main, entry})
		}
		b.relu()
	}
	stage := func(n, out int) {
		unit(out, 2)
		for i := 1; i < n; i++ {
			unit(out, 1)
		}
	}
	stage(4, 240)
	stage(8, 480)
	stage(4, 960)
	b.globalAvgPool()
	b.flatten()
	b.gemm(1000)
	b.softmax()
	return b.finish()
}

// DenseNet builds DenseNet-121 with 4 dense blocks and transition layers.
// Every dense layer's Concat joins the running feature map with the new
// growth channels, producing the long-range connectivity DenseNet is known
// for (modelled via the accumulated concat chain).
func DenseNet() *model.Graph {
	b := newBuilder("densenet", "Image Classification", model.Long, 3, 224, 224)
	b.conv(64, 7, 2, 3)
	b.relu()
	b.maxpool(3, 2, 1)
	growth := 32
	denseLayer := func() {
		entry := b.last
		inC := b.c
		b.conv(4*growth, 1, 1, 0)
		b.relu()
		b.conv(growth, 3, 1, 1)
		g := b.relu()
		b.c = inC + growth
		b.concatFrom([]int{entry, g})
	}
	transition := func() {
		b.conv(b.c/2, 1, 1, 0)
		b.relu()
		b.avgpool(2, 2, 0)
	}
	for _, n := range []int{6, 12, 24, 16} {
		for i := 0; i < n; i++ {
			denseLayer()
		}
		if n != 16 {
			transition()
		}
	}
	b.globalAvgPool()
	b.flatten()
	b.gemm(1000)
	b.softmax()
	return b.finish()
}

// EfficientNet builds EfficientNet-B0 with MBConv blocks (squeeze-excite
// modelled as sigmoid gating) and residual joins on stride-1 same-width
// blocks.
func EfficientNet() *model.Graph {
	b := newBuilder("efficientnet", "Object Detection", model.Short, 3, 224, 224)
	b.conv(32, 3, 2, 1)
	b.swish()
	mbconv := func(out, expand, k, stride int) {
		entry := b.last
		inC := b.c
		if expand != 1 {
			b.conv(inC*expand, 1, 1, 0)
			b.swish()
		}
		pad := k / 2
		b.dwconv(k, stride, pad)
		dw := b.swish()
		// Squeeze-and-excite: pooled gating, modelled as sigmoid+mul.
		gate := b.sigmoid()
		b.ewFromGate(dw, gate)
		b.conv(out, 1, 1, 0)
		if stride == 1 && inC == out {
			b.residual(entry)
		}
	}
	type stage struct{ n, out, expand, k, stride int }
	for _, s := range []stage{
		{1, 16, 1, 3, 1}, {2, 24, 6, 3, 2}, {2, 40, 6, 5, 2},
		{3, 80, 6, 3, 2}, {3, 112, 6, 5, 1}, {4, 192, 6, 5, 2}, {1, 320, 6, 3, 1},
	} {
		mbconv(s.out, s.expand, s.k, s.stride)
		for i := 1; i < s.n; i++ {
			mbconv(s.out, s.expand, s.k, 1)
		}
	}
	b.conv(1280, 1, 1, 0)
	b.swish()
	b.globalAvgPool()
	b.flatten()
	b.gemm(1000)
	b.softmax()
	return b.finish()
}

// ewFromGate appends the SE gating Mul joining the depthwise output with
// the gate.
func (b *builder) ewFromGate(dw, gate int) int {
	n := int64(b.c * b.h * b.w)
	return b.addFrom([]int{dw, gate}, model.Mul, n, 3*n*bytesPerElem)
}
