module split

go 1.22
