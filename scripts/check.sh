#!/usr/bin/env bash
# Tier-1 gate: formatting (including simplifications), vet, the project's
# own static-analysis suite (splitlint), build, and the full test suite
# under the race detector. Run before every commit (`make check`).
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go run ./cmd/splitlint ./...
go test -race -shuffle on ./...

# Brief fuzz smoke past the seed corpora; CI runs the same targets longer.
for target in FuzzInsertGreedy FuzzQueueLifecycle FuzzDeadlineSweep FuzzBatchPlanner; do
    go test ./internal/sched -run '^$' -fuzz "$target" -fuzztime "${FUZZTIME:-2s}"
done
go test ./internal/policy -run '^$' -fuzz FuzzPlacement -fuzztime "${FUZZTIME:-2s}"
go test ./internal/trace -run '^$' -fuzz FuzzSpanBuilder -fuzztime "${FUZZTIME:-2s}"
go test ./internal/workload -run '^$' -fuzz FuzzWorkloadTrace -fuzztime "${FUZZTIME:-2s}"
go test ./internal/fleet -run '^$' -fuzz FuzzAdmission -fuzztime "${FUZZTIME:-2s}"
go test ./internal/gpusim -run '^$' -fuzz FuzzPartitionTimeline -fuzztime "${FUZZTIME:-2s}"

# Bench trajectory gate: compares the committed BENCH_1.json baseline
# against the latest recorded BENCH_<n>.json (from `make bench`). With only
# the baseline present there is nothing to compare and the gate passes —
# no benchmarks run here, so the tier-1 gate stays fast and hermetic.
go run ./cmd/benchjson -gate
echo "check: ok"
