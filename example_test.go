package split_test

import (
	"fmt"

	"split"
)

// ExampleSplitModel splits a long model into evenly-sized blocks and prints
// the plan's quality metrics.
func ExampleSplitModel() {
	g, err := split.LoadModel("resnet50")
	if err != nil {
		panic(err)
	}
	plan, err := split.SplitModel(g, 2, split.DefaultCost())
	if err != nil {
		panic(err)
	}
	fmt.Printf("blocks=%d\n", plan.NumBlocks())
	fmt.Printf("even within %.1f ms\n", plan.StdDevMs)
	// Output:
	// blocks=2
	// even within 0.0 ms
}

// ExampleExpectedWait shows Eq. 1: even blocks halve the expected waiting
// latency of a randomly arriving request compared to an unsplit model.
func ExampleExpectedWait() {
	unsplit := split.ExpectedWait([]float64{60})
	even := split.ExpectedWait([]float64{30, 30})
	fmt.Printf("unsplit %.0f ms, two even blocks %.0f ms\n", unsplit, even)
	// Output:
	// unsplit 30 ms, two even blocks 15 ms
}

// ExampleNewSystem runs the Figure 1 micro-scenario under FCFS and SPLIT.
func ExampleNewSystem() {
	dep, err := split.Deploy()
	if err != nil {
		panic(err)
	}
	arrivals := []split.Arrival{
		{ID: 0, Model: "vgg19", AtMs: 0},
		{ID: 1, Model: "yolov2", AtMs: 5},
	}
	for _, name := range []string{"ClockWork", "SPLIT"} {
		sys, err := split.NewSystem(name)
		if err != nil {
			panic(err)
		}
		recs := sys.Run(arrivals, dep.Catalog, nil)
		fmt.Printf("%s: short request response ratio %.1f\n", name, recs[1].ResponseRatio())
	}
	// Output:
	// ClockWork: short request response ratio 6.8
	// SPLIT: short request response ratio 2.9
}

// ExampleScenarios lists the Table 2 evaluation scenarios.
func ExampleScenarios() {
	for _, sc := range split.Scenarios()[:2] {
		fmt.Printf("%s: λ=%.0fms (%s)\n", sc.Name, sc.MeanIntervalMs, sc.Load)
	}
	// Output:
	// Scenario1: λ=160ms (Low)
	// Scenario2: λ=150ms (Low)
}
