// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark both
// measures the cost of the experiment and reports its headline quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the full
// reproduction harness.
package split

import (
	"fmt"
	"math/rand"
	"net"
	"testing"

	"split/internal/analytic"
	"split/internal/core"
	"split/internal/ga"
	"split/internal/metrics"
	"split/internal/model"
	"split/internal/obs"
	"split/internal/policy"
	"split/internal/profiler"
	"split/internal/sched"
	"split/internal/serve"
	"split/internal/workload"
	"split/internal/zoo"
)

// BenchmarkTable1Profiles regenerates Table 1: loading and profiling the
// five benchmark models.
func BenchmarkTable1Profiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.Table1()
		if len(rows) != 5 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig2CutPointGrid regenerates Figure 2: the exhaustive two-cut
// grid of ResNet50 (7260 candidates per iteration).
func BenchmarkFig2CutPointGrid(b *testing.B) {
	g := zoo.MustLoad("resnet50")
	p := profiler.New(g, model.DefaultCostModel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid := p.CutGrid(1)
		if len(grid.Overhead) == 0 {
			b.Fatal("empty grid")
		}
	}
}

// BenchmarkEq1WaitingLatency measures the Eq. 1 closed form on the GA plan
// of VGG19 and reports the expected wait.
func BenchmarkEq1WaitingLatency(b *testing.B) {
	g := zoo.MustLoad("vgg19")
	p := profiler.New(g, model.DefaultCostModel())
	cand := p.Evaluate([]int{16, 29})
	var w float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w = analytic.ExpectedWait(cand.BlockTimesMs)
	}
	b.ReportMetric(w, "expected-wait-ms")
}

// BenchmarkFig5GAConvergence regenerates one Figure 5 series: the GA on
// VGG19 into 3 blocks, full generation telemetry.
func BenchmarkFig5GAConvergence(b *testing.B) {
	g := zoo.MustLoad("vgg19")
	p := profiler.New(g, model.DefaultCostModel())
	cfg := ga.DefaultConfig(3)
	cfg.StallLimit = cfg.Generations
	var gens int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := ga.Run(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		gens = len(res.PerGeneration)
	}
	b.ReportMetric(float64(gens), "generations")
}

// BenchmarkTable3OptimalSplits regenerates Table 3: GA splits of ResNet50
// and VGG19 at 2..4 blocks.
func BenchmarkTable3OptimalSplits(b *testing.B) {
	cm := model.DefaultCostModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := core.Table3(cm, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("wrong row count")
		}
	}
}

func deployOnce(b *testing.B) *core.Deployment {
	b.Helper()
	dep, err := core.DefaultPipeline().Deploy()
	if err != nil {
		b.Fatal(err)
	}
	return dep
}

// BenchmarkFig6ViolationRate regenerates Figure 6: all six scenarios
// through the four systems, reporting SPLIT's and RT-A's mean violation
// rate at α=4 (the paper's headline comparison).
func BenchmarkFig6ViolationRate(b *testing.B) {
	dep := deployOnce(b)
	var splitV, rtaV float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := core.Fig6(dep, core.DefaultSystems(), int64(i+1))
		splitV, rtaV = 0, 0
		for _, c := range cells {
			switch c.System {
			case "SPLIT":
				splitV += c.Curve[2] // α=4
			case "RT-A":
				rtaV += c.Curve[2]
			}
		}
		splitV /= 6
		rtaV /= 6
	}
	b.ReportMetric(splitV*100, "SPLIT-viol@4-%")
	b.ReportMetric(rtaV*100, "RT-A-viol@4-%")
}

// BenchmarkFig7Jitter regenerates Figure 7 and reports the mean short-model
// jitter of SPLIT and RT-A across scenarios.
func BenchmarkFig7Jitter(b *testing.B) {
	dep := deployOnce(b)
	var splitJ, rtaJ float64
	shorts := []string{"yolov2", "googlenet", "gpt2"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := core.Fig7(dep, core.DefaultSystems(), int64(i+1))
		splitJ, rtaJ = 0, 0
		for _, c := range cells {
			var s float64
			for _, m := range shorts {
				s += c.JitterMs[m]
			}
			s /= float64(len(shorts))
			switch c.System {
			case "SPLIT":
				splitJ += s
			case "RT-A":
				rtaJ += s
			}
		}
		splitJ /= 6
		rtaJ /= 6
	}
	b.ReportMetric(splitJ, "SPLIT-short-jitter-ms")
	b.ReportMetric(rtaJ, "RT-A-short-jitter-ms")
}

// BenchmarkFig3FullVsPartial regenerates the Figure 3 comparison.
func BenchmarkFig3FullVsPartial(b *testing.B) {
	dep := deployOnce(b)
	var rows []core.Fig3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.Fig3(dep, int64(i+1))
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[len(rows)-1].FullMeanRR, "full-meanRR")
		b.ReportMetric(rows[len(rows)-1].PartMeanRR, "partial-meanRR")
	}
}

// BenchmarkTable2ScenarioRun measures one full scenario replay (Scenario 4,
// 1000 requests) under SPLIT.
func BenchmarkTable2ScenarioRun(b *testing.B) {
	dep := deployOnce(b)
	sc := workload.Table2()[3]
	sys := policy.NewSplit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := dep.RunScenario(sc, sys, int64(i+1), nil)
		if run.Summary.Requests != 1000 {
			b.Fatal("lost requests")
		}
	}
}

// BenchmarkAlgorithm1Preemption validates the §3.4 claim that greedy
// preemption runs at microsecond scale: one insertion into a queue of 64
// waiting requests.
func BenchmarkAlgorithm1Preemption(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	models := []string{"yolov2", "googlenet", "resnet50", "vgg19", "gpt2"}
	exts := []float64{10.8, 13.2, 28.35, 67.5, 20.4}
	build := func() *sched.Queue {
		q := sched.NewQueue(4)
		for i := 0; i < 64; i++ {
			k := rng.Intn(len(models))
			q.InsertGreedy(float64(i), sched.NewRequest(i, models[k], model.Short, float64(i), exts[k], []float64{exts[k]}))
		}
		return q
	}
	q := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sched.NewRequest(1000+i, "yolov2", model.Short, float64(i), 10.8, []float64{10.8})
		q.InsertGreedy(float64(i), r)
		if q.Len() > 256 {
			b.StopTimer()
			q = build()
			b.StartTimer()
		}
	}
}

// BenchmarkAlgorithm1WorstCase measures the O(n) worst case: the new
// request bubbles past the entire queue.
func BenchmarkAlgorithm1WorstCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q := sched.NewQueue(4)
		for j := 0; j < 1024; j++ {
			q.InsertGreedy(0, sched.NewRequest(j, "vgg19", model.Long, 0, 67.5, []float64{67.5}))
		}
		r := sched.NewRequest(9999, "yolov2", model.Short, 0, 0.001, []float64{0.001})
		b.StartTimer()
		q.InsertGreedy(0, r)
	}
}

// BenchmarkAblationSearchStrategies compares GA vs random search at a fixed
// budget (ablation 1).
func BenchmarkAblationSearchStrategies(b *testing.B) {
	g := zoo.MustLoad("resnet50")
	p := profiler.New(g, model.DefaultCostModel())
	b.Run("GA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := ga.DefaultConfig(3)
			cfg.Seed = int64(i + 1)
			if _, err := ga.Run(p, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("random-2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ga.RandomSearch(p, 3, 2000, int64(i+1))
		}
	})
	b.Run("exhaustive-m2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Exhaustive(2, profiler.StdDevObjective)
		}
	})
}

// BenchmarkAblationEvenness reports the violation rate of even vs unsplit
// deployment under Scenario 5 (ablation 2).
func BenchmarkAblationEvenness(b *testing.B) {
	dep := deployOnce(b)
	unsplit := policy.NewCatalog(dep.Graphs, nil)
	sc := workload.Table2()[4]
	var even, none float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, int64(i+1)))
		even = metrics.ViolationRate(policy.NewSplit().Run(arrivals, dep.Catalog, nil), 4)
		none = metrics.ViolationRate(policy.NewSplit().Run(arrivals, unsplit, nil), 4)
	}
	b.ReportMetric(even*100, "even-viol@4-%")
	b.ReportMetric(none*100, "unsplit-viol@4-%")
}

// BenchmarkAblationElastic compares elastic splitting on/off under bursty
// Scenario 6 (ablation 3).
func BenchmarkAblationElastic(b *testing.B) {
	dep := deployOnce(b)
	var rows []core.ElasticAblationRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.ElasticAblation(dep, int64(i+1))
	}
	for _, r := range rows {
		if r.Scenario.Name == "Scenario6" {
			if r.Elastic {
				b.ReportMetric(r.MeanRR, "elastic-meanRR")
			} else {
				b.ReportMetric(r.MeanRR, "static-meanRR")
			}
		}
	}
}

// BenchmarkAblationBlockCount sweeps the block count of VGG19 (ablation 5).
func BenchmarkAblationBlockCount(b *testing.B) {
	cm := model.DefaultCostModel()
	var rows []core.BlockCountRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.BlockCountSweep("vgg19", 6, cm, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	best := rows[0]
	for _, r := range rows {
		if r.ExpectedWaitMs < best.ExpectedWaitMs {
			best = r
		}
	}
	b.ReportMetric(float64(best.Blocks), "optimal-blocks")
}

// BenchmarkAblationGuidedInit compares guided vs uniform GA initialization
// (ablation 6).
func BenchmarkAblationGuidedInit(b *testing.B) {
	g := zoo.MustLoad("vgg19")
	p := profiler.New(g, model.DefaultCostModel())
	for _, guided := range []bool{true, false} {
		name := "uniform"
		if guided {
			name = "guided"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ga.DefaultConfig(3)
				cfg.GuidedInit = guided
				cfg.Seed = int64(i + 1)
				if _, err := ga.Run(p, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioAllSystems measures a full Figure 6/7-style sweep of one
// scenario across every system.
func BenchmarkScenarioAllSystems(b *testing.B) {
	dep := deployOnce(b)
	sc := workload.Table2()[5]
	systems := core.DefaultSystems()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sys := range systems {
			dep.RunScenario(sc, sys, int64(i+1), nil)
		}
	}
}

// BenchmarkGPT2Profile measures profiling the 2534-op GPT-2 graph: a full
// single-cut profile over every position.
func BenchmarkGPT2Profile(b *testing.B) {
	g := zoo.MustLoad("gpt2")
	p := profiler.New(g, model.DefaultCostModel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		over, std := p.SingleCutProfile()
		if len(over) != 2533 || len(std) != 2533 {
			b.Fatal("wrong profile size")
		}
	}
}

// BenchmarkFig1Microbenchmark regenerates the Figure 1 two-request
// comparison and reports SPLIT's and FCFS's short-request response ratios.
func BenchmarkFig1Microbenchmark(b *testing.B) {
	dep := deployOnce(b)
	var rows []core.Fig1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.Fig1(dep)
	}
	for _, r := range rows {
		switch r.System {
		case "SPLIT":
			b.ReportMetric(r.ShortRR, "SPLIT-short-RR")
		case "ClockWork":
			b.ReportMetric(r.ShortRR, "FCFS-short-RR")
		}
	}
}

// BenchmarkAblationStarvationGuard runs the starvation-guard extension
// ablation and reports the long-request p95 RR with and without the guard.
func BenchmarkAblationStarvationGuard(b *testing.B) {
	dep := deployOnce(b)
	var rows []core.StarvationRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.StarvationAblation(dep, int64(i+1))
	}
	for _, r := range rows {
		if r.GuardRR == 0 {
			b.ReportMetric(r.P95LongRR, "p95-longRR-off")
		}
		if r.GuardRR == 6 {
			b.ReportMetric(r.P95LongRR, "p95-longRR-guard6")
		}
	}
}

// BenchmarkREEFComparison runs Scenario 3 under SPLIT and REEF, reporting
// both short-jitter values (the §6 flexibility-vs-hardware trade).
func BenchmarkREEFComparison(b *testing.B) {
	dep := deployOnce(b)
	sc := workload.Table2()[2]
	var splitJ, reefJ float64
	shorts := []string{"yolov2", "googlenet", "gpt2"}
	mean := func(recs []policy.Record) float64 {
		j := metrics.JitterByModel(recs)
		var s float64
		for _, m := range shorts {
			s += j[m]
		}
		return s / float64(len(shorts))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrivals := workload.MustGenerate(workload.ForScenario(sc, zoo.BenchmarkModels, int64(i+1)))
		splitJ = mean(policy.NewSplit().Run(arrivals, dep.Catalog, nil))
		reefJ = mean(policy.NewREEF().Run(arrivals, dep.Catalog, nil))
	}
	b.ReportMetric(splitJ, "SPLIT-short-jitter-ms")
	b.ReportMetric(reefJ, "REEF-short-jitter-ms")
}

// BenchmarkParallelSweep compares serial vs parallel candidate sweeps on the
// 2534-op GPT-2 graph (the heaviest profile target).
func BenchmarkParallelSweep(b *testing.B) {
	g := zoo.MustLoad("gpt2")
	p := profiler.New(g, model.DefaultCostModel())
	for _, workers := range []int{1, 4, 0} {
		name := "serial"
		switch workers {
		case 4:
			name = "workers-4"
		case 0:
			name = "workers-max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i + 1)))
				if workers == 1 {
					p.RandomSample(4, 2000, rng)
				} else {
					p.RandomSampleParallel(4, 2000, workers, rng)
				}
			}
		})
	}
}

// BenchmarkGAParallelism compares GA wall time at different evaluation
// parallelism levels on GPT-2 (identical results by construction). Note:
// because the profiler precomputes prefix sums and boundary costs, a single
// candidate evaluation is O(m) and sub-microsecond, so the GA is expected
// to see little or no speedup — the measurement documents that the
// precomputation, not parallel evaluation, is what makes the GA fast.
func BenchmarkGAParallelism(b *testing.B) {
	g := zoo.MustLoad("gpt2")
	p := profiler.New(g, model.DefaultCostModel())
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "workers-4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ga.DefaultConfig(4)
				cfg.Parallelism = workers
				cfg.Seed = int64(i + 1)
				cfg.Generations = 10
				cfg.StallLimit = 10
				if _, err := ga.Run(p, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeRPC measures the serving path's per-request overhead: RPC
// round trip + Algorithm 1 insertion + executor wakeup, with near-zero
// simulated execution time so scheduling cost dominates.
func BenchmarkServeRPC(b *testing.B) {
	graphs := map[string]*model.Graph{
		"tiny": {
			Name: "tiny", Domain: "bench", Class: model.Short,
			Ops: []model.Op{{Name: "op", TimeMs: 0.01}},
		},
	}
	srv, err := serve.NewServer(serve.Config{
		Catalog:   policy.NewCatalog(graphs, nil),
		TimeScale: 0.001,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	c, err := serve.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Infer("tiny"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedInsertGreedy measures Algorithm 1's insertion cost at
// several queue depths. Sub-benchmark names are stable (`depth=N`) so
// `go test -bench InsertGreedy -count 10 | benchstat` can diff runs across
// PRs; ns/insert is also reported explicitly, amortized over the depth.
func BenchmarkSchedInsertGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	models := []string{"vgg19", "yolov2", "pos", "ner", "resnet50"}
	for _, depth := range []int{16, 64, 256} {
		reqs := make([]*sched.Request, depth)
		for i := range reqs {
			m := models[rng.Intn(len(models))]
			ext := 5 + rng.Float64()*120
			reqs[i] = sched.NewRequest(i, m, model.Short, rng.Float64()*100, ext,
				[]float64{ext / 3, ext / 3, ext / 3})
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := sched.NewQueue(4)
				for _, r := range reqs {
					q.InsertGreedy(r.ArriveMs, r)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*depth), "ns/insert")
		})
	}
}

// millionCohorts is the heterogeneous cohort mix of the million-request
// sweep: steady interactive traffic, bursty MMPP edge traffic, and a
// diurnally-modulated heavy-tailed batch population.
func millionCohorts(count int, seed int64) workload.CohortSetConfig {
	return workload.CohortSetConfig{
		Cohorts: []workload.Cohort{
			{
				Name:    "interactive",
				Models:  zoo.BenchmarkModels,
				Process: workload.Process{Kind: workload.ProcPoisson, MeanIntervalMs: 24},
			},
			{
				Name:   "edge-burst",
				Models: []string{"yolov2", "googlenet"},
				Process: workload.Process{
					Kind: workload.ProcMMPP, MeanIntervalMs: 120,
					BurstIntervalMs: 20, CalmDwellMs: 4000, BurstDwellMs: 1000,
				},
			},
			{
				Name:     "batch",
				Models:   []string{"vgg19", "gpt2"},
				Process:  workload.Process{Kind: workload.ProcLogNormal, MeanIntervalMs: 90, Sigma: 1.2},
				Envelope: &workload.Envelope{PeriodMs: 600000, Factors: []float64{0.5, 1, 2, 1}},
			},
		},
		Count: count,
		Seed:  seed,
	}
}

// BenchmarkCohortGeneration measures the lazy heap-merge generator alone:
// one million arrivals from three heterogeneous cohorts in a single pass.
func BenchmarkCohortGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arrivals := workload.MustGenerateCohorts(millionCohorts(1_000_000, int64(i+1)))
		if len(arrivals) != 1_000_000 {
			b.Fatal("lost arrivals")
		}
	}
}

// BenchmarkMillionRequestSweep measures the full million-request pipeline —
// cohort generation plus replay through policy.Split on a 4-device
// least-loaded fleet — and reports the simulated request throughput. This
// is the PR 8 scale point: the allocation work recorded in BENCH_2.json is
// what makes this sweep run in seconds.
func BenchmarkMillionRequestSweep(b *testing.B) {
	dep := deployOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrivals := workload.MustGenerateCohorts(millionCohorts(1_000_000, int64(i+1)))
		sys := policy.NewSplit()
		sys.Devices = 4
		sys.Placement = "least-loaded"
		recs := sys.Run(arrivals, dep.Catalog, nil)
		if len(recs) != 1_000_000 {
			b.Fatal("lost requests")
		}
	}
	b.ReportMetric(float64(1_000_000*b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkObsHotPath measures the instrumentation primitives the serving
// path calls per request, confirming they stay allocation-free.
func BenchmarkObsHotPath(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter(obs.MetricRequestsTotal, "bench", "model", "vgg19")
	g := reg.Gauge(obs.MetricQueueDepth, "bench")
	h := reg.Histogram(obs.MetricE2EMs, "bench", obs.DefaultLatencyBuckets())
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.SetInt(i)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i % 4000))
		}
	})
}
