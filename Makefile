# Development entry points. `make check` is the tier-1 gate CI runs.

COUNT ?= 1
BENCH ?= .

.PHONY: check test lint bench fmt

check:
	./scripts/check.sh

test:
	go test ./...

# Project-native static analysis (see internal/lint): determinism,
# time-unit, error-wrapping, and lock-discipline rules.
lint:
	go run ./cmd/splitlint ./...

# Benchstat-compatible output: run with COUNT=10 and feed two bench.out
# files from different commits to `benchstat old.out new.out`.
bench:
	go test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) . ./internal/... | tee bench.out

fmt:
	gofmt -w .
