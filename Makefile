# Development entry points. `make check` is the tier-1 gate CI runs.

COUNT ?= 1
BENCH ?= .

.PHONY: check test bench fmt

check:
	./scripts/check.sh

test:
	go test ./...

# Benchstat-compatible output: run with COUNT=10 and feed two bench.out
# files from different commits to `benchstat old.out new.out`.
bench:
	go test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) . ./internal/... | tee bench.out

fmt:
	gofmt -w .
