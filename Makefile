# Development entry points. `make check` is the tier-1 gate CI runs.

COUNT ?= 1
BENCH ?= .

.PHONY: check test lint bench fmt

check:
	./scripts/check.sh

test:
	go test ./...

# Project-native static analysis (see internal/lint): determinism,
# time-unit, error-wrapping, and lock-discipline rules.
lint:
	go run ./cmd/splitlint ./...

# Benchstat-compatible output: run with COUNT=10 and feed two bench.out
# files from different commits to `benchstat old.out new.out`. Each run is
# also recorded as the next BENCH_<n>.json (name -> ns/op, B/op,
# allocs/op, stamped with commit/date) — the repo's bench trajectory;
# `benchjson -gate` compares the committed baseline against the latest.
bench:
	go test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) . ./internal/... | tee bench.out
	go run ./cmd/benchjson -in bench.out -next

fmt:
	gofmt -w .
