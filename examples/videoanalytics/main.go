// Videoanalytics demonstrates the paper's jitter argument (§2.1): a
// real-time video pipeline classifies frames at a fixed rate, sharing the
// GPU with background long inferences. Frame *stability* — low standard
// deviation of per-frame latency — matters as much as the average, because
// a few slow frames break the stream. The example measures per-frame jitter
// and stutter under each system, the Figure 7 metric on a concrete app.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"split"
)

const (
	fps       = 25
	horizonMs = 30_000
	frameGap  = 1000.0 / fps
)

func main() {
	dep, err := split.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	arrivals := buildPipeline(11)
	fmt.Printf("video analytics: %d FPS googlenet frames + background resnet50/vgg19/gpt2 load\n\n", fps)
	fmt.Printf("%-16s %12s %12s %12s %14s\n",
		"system", "frame mean", "frame std", "frame p99", "stutter rate*")
	for _, name := range []string{"SPLIT", "ClockWork", "PREMA", "RT-A"} {
		sys, err := split.NewSystem(name)
		if err != nil {
			log.Fatal(err)
		}
		recs := sys.Run(arrivals, dep.Catalog, nil)
		var frames []float64
		for _, r := range recs {
			if r.Model == "googlenet" {
				frames = append(frames, r.E2EMs())
			}
		}
		mean, std := meanStd(frames)
		fmt.Printf("%-16s %10.2fms %10.2fms %10.2fms %13.1f%%\n",
			name, mean, std, p99(frames), stutter(frames)*100)
	}
	fmt.Printf("\n* frames exceeding 2x the frame budget (%.0f ms)\n", 2*frameGap)
}

func buildPipeline(seed int64) []split.Arrival {
	rng := rand.New(rand.NewSource(seed))
	var arrivals []split.Arrival
	add := func(m string, at float64) {
		arrivals = append(arrivals, split.Arrival{Model: m, AtMs: at})
	}
	// The camera pipeline: one googlenet classification per frame.
	for t := 0.0; t < horizonMs; t += frameGap {
		add("googlenet", t)
	}
	// Background analytics sharing the device.
	for t := 15.0; t < horizonMs; t += 350 + rng.Float64()*100 {
		add("resnet50", t)
	}
	for t := 70.0; t < horizonMs; t += 900 + rng.Float64()*200 {
		add("vgg19", t)
	}
	for t := 120.0; t < horizonMs; t += 600 + rng.Float64()*150 {
		add("gpt2", t) // caption generation
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].AtMs < arrivals[j].AtMs })
	for i := range arrivals {
		arrivals[i].ID = i
	}
	return arrivals
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

func p99(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)*99/100]
}

func stutter(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > 2*frameGap {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
