// Server demonstrates the real-time serving path (§4): it starts an
// in-process splitd-style RPC server at 20x accelerated time, fires a burst
// of concurrent clients at it — long detections plus short classifications —
// and prints each request's measured QoS, showing the greedy block
// preemption working over actual wall-clock execution and net/rpc.
package main

import (
	"fmt"
	"log"
	"net"
	"sort"
	"sync"

	"split"
	"split/internal/sched"
)

func main() {
	dep, err := split.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := split.NewServer(split.ServerConfig{
		Catalog:   dep.Catalog,
		Alpha:     4,
		Elastic:   sched.DefaultElastic(),
		TimeScale: 0.05, // 20x faster than the simulated device
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()
	fmt.Printf("serving %d models on %s (20x accelerated)\n\n", len(dep.Catalog), srv.Addr())

	client, err := split.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Fire a long request immediately, then a wave of shorts right behind
	// it, all concurrently — the contention pattern of Figure 1.
	jobs := []string{"vgg19", "yolov2", "googlenet", "yolov2", "resnet50", "googlenet", "gpt2", "yolov2"}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var replies []split.InferReply
	for _, m := range jobs {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			r, err := client.Infer(m)
			if err != nil {
				log.Println("infer:", err)
				return
			}
			mu.Lock()
			replies = append(replies, r)
			mu.Unlock()
		}(m)
	}
	wg.Wait()

	sort.Slice(replies, func(i, j int) bool { return replies[i].ReqID < replies[j].ReqID })
	fmt.Printf("%-4s %-10s %7s %10s %10s %8s %9s\n",
		"req", "model", "blocks", "e2e(ms)", "wait(ms)", "RR", "preempts")
	for _, r := range replies {
		fmt.Printf("%-4d %-10s %7d %10.2f %10.2f %8.2f %9d\n",
			r.ReqID, r.Model, r.Blocks, r.E2EMs, r.WaitMs, r.ResponseRatio, r.Preemptions)
	}
	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver: served=%d queued=%d uptime=%.2fs wall\n", st.Served, st.Queued, st.UptimeS)
}
