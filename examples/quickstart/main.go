// Quickstart: split a long model into evenly-sized blocks with the genetic
// algorithm, inspect the plan, and watch block-level preemption rescue a
// short request that arrives mid-inference — the Figure 1 story.
package main

import (
	"fmt"
	"log"

	"split"
)

func main() {
	// 1. Load a long model from the zoo and split it offline.
	vgg, err := split.LoadModel("vgg19")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := split.SplitModel(vgg, 3, split.DefaultCost())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vgg19: %d ops, %.1f ms isolated\n", vgg.NumOps(), vgg.TotalTimeMs())
	fmt.Printf("plan: cuts=%v\n", plan.Cuts)
	for i, t := range plan.BlockTimesMs {
		fmt.Printf("  block %d: %.2f ms\n", i, t)
	}
	fmt.Printf("std dev %.3f ms, splitting overhead %.1f%%\n",
		plan.StdDevMs, plan.OverheadRatio*100)
	fmt.Printf("expected wait for a random arrival (Eq. 1): %.2f ms split vs %.2f ms unsplit\n\n",
		split.ExpectedWait(plan.BlockTimesMs), split.ExpectedWait([]float64{vgg.TotalTimeMs()}))

	// 2. Reenact Figure 1: a long request starts, a short one arrives
	//    mid-flight. Compare SPLIT against sequential FCFS (ClockWork).
	yolo, err := split.LoadModel("yolov2")
	if err != nil {
		log.Fatal(err)
	}
	graphs := map[string]*split.Graph{"vgg19": vgg, "yolov2": yolo}
	catalog := split.NewCatalog(graphs, map[string]*split.SplitPlan{"vgg19": plan})
	arrivals := []split.Arrival{
		{ID: 0, Model: "vgg19", AtMs: 0},
		{ID: 1, Model: "yolov2", AtMs: 5}, // arrives while block 0 runs
	}
	for _, name := range []string{"SPLIT", "ClockWork"} {
		sys, err := split.NewSystem(name)
		if err != nil {
			log.Fatal(err)
		}
		tracer := split.NewTracer()
		recs := sys.Run(arrivals, catalog, tracer)
		fmt.Printf("== %s ==\n", name)
		for _, r := range recs {
			fmt.Printf("  req %d %-8s e2e=%6.2f ms  response ratio=%.2f\n",
				r.ID, r.Model, r.E2EMs(), r.ResponseRatio())
		}
		fmt.Print(tracer.Gantt(0, 110, 2.2))
	}
	fmt.Println("With SPLIT the short request preempts at the next block boundary;")
	fmt.Println("under FCFS it waits for the whole long model.")
}
