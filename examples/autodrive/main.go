// Autodrive reenacts the paper's motivating scenario (§1): an on-board edge
// processor continuously runs person *detection* (long requests), while
// person *tracking* and *pose extraction* (short requests) fire in bursts
// whenever pedestrians approach the car and route safety must be assessed
// immediately. The example compares how SPLIT and the baselines protect the
// short safety-critical requests' QoS.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"split"
)

// The roles in this scenario, mapped onto zoo models:
//
//	detection (long):  resnet50 every ~90 ms, vgg19 every ~250 ms
//	tracking  (short): yolov2, burst of 5 frames when a pedestrian appears
//	pose      (short): googlenet, burst of 5 frames alongside tracking
const (
	horizonMs    = 20_000
	burstEvery   = 1_000 // a pedestrian shows up about once a second
	burstFrames  = 5
	frameSpacing = 33 // ~30 FPS burst
)

func main() {
	dep, err := split.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	arrivals := buildScenario(7)

	fmt.Printf("autodrive: %d requests over %.0f s (detection continuous, tracking/pose bursty)\n\n",
		len(arrivals), float64(horizonMs)/1000)
	fmt.Printf("%-16s %14s %14s %16s %16s\n",
		"system", "track p95 RR", "pose p95 RR", "track viol@4", "safety deadline*")
	for _, name := range []string{"SPLIT", "ClockWork", "PREMA", "RT-A"} {
		sys, err := split.NewSystem(name)
		if err != nil {
			log.Fatal(err)
		}
		recs := sys.Run(arrivals, dep.Catalog, nil)
		track := filter(recs, "yolov2")
		pose := filter(recs, "googlenet")
		fmt.Printf("%-16s %14.2f %14.2f %15.1f%% %15.1f%%\n",
			name, p95RR(track), p95RR(pose),
			split.ViolationRate(track, 4)*100,
			deadlineMissRate(track, 100)*100)
	}
	fmt.Println("\n* fraction of tracking frames slower than a 100 ms end-to-end safety deadline")
}

// buildScenario generates the mixed arrival trace.
func buildScenario(seed int64) []split.Arrival {
	rng := rand.New(rand.NewSource(seed))
	var arrivals []split.Arrival
	add := func(m string, at float64) {
		arrivals = append(arrivals, split.Arrival{Model: m, AtMs: at})
	}
	// Continuous detection streams with light jitter.
	for t := 0.0; t < horizonMs; t += 90 + rng.Float64()*20 {
		add("resnet50", t)
	}
	for t := 40.0; t < horizonMs; t += 250 + rng.Float64()*40 {
		add("vgg19", t)
	}
	// Pedestrian bursts: tracking + pose frame pairs.
	for t := 500.0; t < horizonMs; t += burstEvery * (0.7 + 0.6*rng.Float64()) {
		for f := 0; f < burstFrames; f++ {
			at := t + float64(f)*frameSpacing
			add("yolov2", at)
			add("googlenet", at+5)
		}
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].AtMs < arrivals[j].AtMs })
	for i := range arrivals {
		arrivals[i].ID = i
	}
	return arrivals
}

func filter(recs []split.Record, model string) []split.Record {
	var out []split.Record
	for _, r := range recs {
		if r.Model == model {
			out = append(out, r)
		}
	}
	return out
}

func p95RR(recs []split.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	rrs := make([]float64, len(recs))
	for i, r := range recs {
		rrs[i] = r.ResponseRatio()
	}
	sort.Float64s(rrs)
	return rrs[len(rrs)*95/100]
}

func deadlineMissRate(recs []split.Record, deadlineMs float64) float64 {
	if len(recs) == 0 {
		return 0
	}
	miss := 0
	for _, r := range recs {
		if r.E2EMs() > deadlineMs {
			miss++
		}
	}
	return float64(miss) / float64(len(recs))
}
