// Lifecycle demonstrates request-lifecycle hardening on the serving path:
// deadline shedding (a request that cannot meet α·t_ext is dropped at a
// block boundary instead of occupying the device), client cancellation via
// the Submit/Cancel/Wait RPCs, fault-injected block retries, and a bounded
// graceful drain that finishes the backlog or sheds what remains.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"split"
	"split/internal/gpusim"
	"split/internal/sched"
	"split/internal/serve"
)

func main() {
	dep, err := split.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := split.NewServer(split.ServerConfig{
		Catalog:          dep.Catalog,
		Alpha:            4,
		Elastic:          sched.DefaultElastic(),
		TimeScale:        0.05, // 20x faster than the simulated device
		EnforceDeadlines: true, // every request gets deadline = arrive + α·t_ext
		PredictiveShed:   true, // shed work that cannot finish in time, even early
		Faults: &gpusim.FaultInjector{
			Seed:        7,
			SpikeProb:   0.05,
			SpikeFactor: 3,
			FailProb:    0.02,
			MaxRetries:  2,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()
	fmt.Printf("serving %d models on %s with deadlines and fault injection\n\n", len(dep.Catalog), srv.Addr())

	client, err := split.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// 1. Deadline shedding: a classification with a deliberately impossible
	// deadline (far under its own t_ext) is doomed on arrival; the
	// predictive sweep sheds it before it ever occupies the device.
	fmt.Println("-- deadline shedding --")
	if _, err := client.InferDeadline("googlenet", 1); err != nil {
		fmt.Printf("  googlenet with 1ms deadline: shed=%v err=%v\n", serve.IsShed(err), err)
	} else {
		fmt.Println("  googlenet with 1ms deadline: unexpectedly served")
	}

	// 2. Client cancellation: while a long detection holds the device, a
	// queued request is submitted asynchronously and then canceled — it is
	// removed from the queue and never runs a block.
	fmt.Println("-- cancellation --")
	blocker, err := client.Submit("vgg19", 0)
	if err != nil {
		log.Fatal(err)
	}
	victim, err := client.Submit("googlenet", 0)
	if err != nil {
		log.Fatal(err)
	}
	state, err := client.Cancel(victim)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Wait(victim); err != nil {
		fmt.Printf("  req %d canceled while %s: %v\n", victim, state, err)
	} else {
		fmt.Printf("  req %d finished before the cancel landed (%s)\n", victim, state)
	}
	if _, err := client.Wait(blocker); err != nil {
		fmt.Println("  vgg19 blocker:", err)
	}

	// 3. Graceful drain: queue a backlog, then drain with a budget long
	// enough to finish it — a clean drain sheds nothing.
	fmt.Println("-- graceful drain --")
	ids := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := client.Submit("googlenet", 0)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	timedOut := srv.Drain(5 * time.Second)
	served, shed := 0, 0
	for _, id := range ids {
		if _, err := client.Wait(id); err == nil {
			served++
		} else if serve.IsShed(err) {
			shed++ // deadline-shed while draining still counts as shed
		}
	}
	fmt.Printf("  drained: %d served, %d shed, %d past the drain timeout\n", served, shed, timedOut)
}
