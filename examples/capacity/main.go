// Capacity demonstrates planning with the M/G/1 module: given a target
// violation rate at α=4, it finds the fastest sustainable per-task arrival
// interval analytically (Pollaczek–Khinchine + exponential tail), then
// verifies the prediction by simulating FCFS and SPLIT at that operating
// point — showing both that the theory matches the simulator and how much
// extra headroom SPLIT's block-level preemption buys.
package main

import (
	"fmt"
	"log"

	"split"
)

const (
	targetViolation = 0.15 // plan for <= 15% violations at α=4
	alpha           = 4.0
	numTasks        = 5
)

func main() {
	mix := split.BenchmarkServiceMix()
	fmt.Printf("service mix: mean %.2f ms, SCV %.2f\n", mix.MeanMs(), mix.SCV())

	// Analytic capacity search: smallest aggregate inter-arrival interval
	// whose predicted FCFS violation rate stays under the target.
	var planned float64
	for interval := 120.0; interval >= mix.MeanMs(); interval -= 0.5 {
		q := split.AnalyzeQueue(interval, mix)
		if !q.Stable() || q.ViolationRateApprox(alpha) > targetViolation {
			break
		}
		planned = interval
	}
	q := split.AnalyzeQueue(planned, mix)
	fmt.Printf("analytic plan: aggregate interval %.1f ms (ρ=%.2f) keeps FCFS violations ≤ %.0f%%\n",
		planned, q.Utilization(), targetViolation*100)
	fmt.Printf("  predicted: mean wait %.1f ms, violation@4 %.1f%%\n",
		q.MeanWaitMs(), q.ViolationRateApprox(alpha)*100)

	// Verify by simulation at exactly that operating point.
	dep, err := split.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	arrivals, err := split.GenerateWorkload(split.WorkloadConfig{
		Models:         split.BenchmarkModels(),
		MeanIntervalMs: planned * numTasks, // per-task interval
		PerTask:        true,
		Count:          1000,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated at the planned operating point:")
	for _, name := range []string{"ClockWork", "SPLIT"} {
		sys, err := split.NewSystem(name)
		if err != nil {
			log.Fatal(err)
		}
		recs := sys.Run(arrivals, dep.Catalog, nil)
		sum := split.Summarize(name, recs)
		fmt.Printf("  %-10s violation@4 %.1f%%, mean wait %.1f ms\n",
			name, sum.ViolationAt4*100, sum.MeanWaitMs)
	}
	fmt.Println("\nFCFS lands near the analytic prediction; SPLIT runs the same load")
	fmt.Println("with far fewer violations — the headroom evenly-sized splitting buys.")
}
