// Fleet demonstrates multi-GPU serving: a 2-device server built with the
// versioned functional-options API, least-loaded placement routing a
// concurrent burst across the devices, the protocol v2 handshake reporting
// the fleet shape to the client, and typed errors surviving the wire via
// the v2 error codes (errors.Is works on what Dial returns).
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"split"
	"split/internal/serve"
)

func main() {
	dep, err := split.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := split.NewServerWith(dep.Catalog,
		split.WithDevices(2),
		split.WithPlacement("least-loaded"),
		split.WithTimeScale(0.05), // 20x faster than the simulated device
	)
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	client, err := split.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	devices, placement := client.Fleet()
	fmt.Printf("negotiated protocol v%d; server is a %d-device fleet with %s placement\n\n",
		client.Proto(), devices, placement)

	// A concurrent burst: the placer routes each arrival to the device with
	// the least expected work, so both devices fill up.
	models := []string{"vgg19", "googlenet", "resnet50", "yolov2", "gpt2", "googlenet"}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		perDev = map[int]int{}
		total  = 2 * len(models)
	)
	for i := 0; i < total; i++ {
		m := models[i%len(models)]
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			reply, err := client.Infer(m)
			if err != nil {
				fmt.Printf("  %-10s failed: %v\n", m, err)
				return
			}
			mu.Lock()
			perDev[reply.Device]++
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	fmt.Println("-- burst served --")
	for d := 0; d < devices; d++ {
		fmt.Printf("  device %d served %d requests\n", d, perDev[d])
	}
	snap := srv.QueueSnapshot()
	for _, ds := range snap.Devices {
		fmt.Printf("  device %d occupancy: %.0f simulated ms\n", ds.Device, ds.BusyMsTotal)
	}

	// Typed errors across the wire: protocol v2 carries a stable error code
	// in the reply, so the client reconstructs the exported error values.
	fmt.Println("-- typed wire errors --")
	_, err = client.Infer("no-such-model")
	fmt.Printf("  unknown model: errors.Is(err, ErrUnknownModel) = %v (%v)\n",
		errors.Is(err, serve.ErrUnknownModel), err)
}
