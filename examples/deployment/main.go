// Deployment walks the full SPLIT operational workflow of §4.1: (1) split
// long models offline with the genetic algorithm, (2) persist the plans as
// JSON artifacts (the .onnx-block analogue), (3) start the serving daemon
// from those artifacts, (4) hot-deploy an extra model at runtime through the
// deployment-manager RPC, and (5) issue inference requests against the live
// deployment.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"split"
	"split/internal/onnxlite"
	"split/internal/policy"
	"split/internal/sched"
	"split/internal/serve"
)

func main() {
	dir, err := os.MkdirTemp("", "split-plans-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// (1) Offline: split the long models.
	plans := map[string]*split.SplitPlan{}
	for name, blocks := range map[string]int{"resnet50": 2, "vgg19": 3} {
		g, err := split.LoadModel(name)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := split.SplitModel(g, blocks, split.DefaultCost())
		if err != nil {
			log.Fatal(err)
		}
		plans[name] = plan
		fmt.Printf("offline: %s -> %d blocks, std %.3f ms, overhead %.1f%%\n",
			name, plan.NumBlocks(), plan.StdDevMs, plan.OverheadRatio*100)
	}

	// (2) Persist plan artifacts.
	if err := onnxlite.SavePlanDir(dir, plans); err != nil {
		log.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.plan.json"))
	fmt.Printf("persisted %d plan artifacts in %s\n", len(files), dir)

	// (3) Online: load artifacts and start the daemon (20x accelerated).
	loaded, err := onnxlite.LoadPlanDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	graphs := map[string]*split.Graph{}
	for _, name := range split.BenchmarkModels() {
		g, err := split.LoadModel(name)
		if err != nil {
			log.Fatal(err)
		}
		graphs[name] = g
	}
	srv, err := serve.NewServer(serve.Config{
		Catalog:   policy.NewCatalog(graphs, loaded),
		Alpha:     4,
		Elastic:   sched.DefaultElastic(),
		TimeScale: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(l); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	client, err := serve.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// (4) Hot-deploy a custom model at runtime.
	if _, err := client.Deploy(serve.DeployArgs{
		Name:         "pose-estimator",
		Class:        "Short",
		ExtMs:        7.5,
		BlockTimesMs: nil, // short model: served unsplit
	}); err != nil {
		log.Fatal(err)
	}
	models, err := client.ListModels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlive deployment:")
	for _, m := range models {
		fmt.Printf("  %-16s %-6s ext=%.2fms blocks=%d\n", m.Name, m.Class, m.ExtMs, m.Blocks)
	}

	// (5) Serve requests against the updated deployment.
	fmt.Println("\ninference:")
	for _, m := range []string{"vgg19", "pose-estimator", "yolov2"} {
		reply, err := client.Infer(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s blocks=%d e2e=%7.2fms rr=%.2f\n",
			reply.Model, reply.Blocks, reply.E2EMs, reply.ResponseRatio)
	}
}
