// Package split is the public API of the SPLIT reproduction: a QoS-aware
// DNN inference system for a single shared GPU that improves the latency
// violation rate and jitter by splitting models into evenly-sized blocks
// with a genetic algorithm (offline) and preempting between blocks with a
// greedy response-ratio scheduler (online).
//
// Typical use:
//
//	g, _ := split.LoadModel("vgg19")
//	plan, _ := split.SplitModel(g, 3, split.DefaultCost())        // offline GA
//	dep, _ := split.Deploy()                                       // full benchmark set
//	runs := dep.RunAllScenarios(split.DefaultSystems(), 1)         // Table 2 sweep
//
// or start the serving path:
//
//	srv, _ := split.NewServerWith(catalog, split.WithDevices(2))
//	l, _ := net.Listen("tcp", "127.0.0.1:0")
//	srv.Start(l)
//	c, _ := split.Dial(srv.Addr())
//	reply, _ := c.Infer("yolov2")
//
// The package re-exports the library's building blocks; the heavy lifting
// lives in the internal packages (see DESIGN.md for the inventory).
package split

import (
	"split/internal/analytic"
	"split/internal/core"
	"split/internal/ga"
	"split/internal/metrics"
	"split/internal/model"
	"split/internal/onnxlite"
	"split/internal/policy"
	"split/internal/profiler"
	"split/internal/queueing"
	"split/internal/serve"
	"split/internal/trace"
	"split/internal/workload"
	"split/internal/zoo"
)

// Core model types.
type (
	// Graph is an operator-level model graph.
	Graph = model.Graph
	// Op is one operator with its cost profile.
	Op = model.Op
	// SplitPlan is an offline splitting result deployable online.
	SplitPlan = model.SplitPlan
	// CostModel prices block-boundary overheads.
	CostModel = model.CostModel
	// RequestClass distinguishes Short from Long request models.
	RequestClass = model.RequestClass
)

// Scheduling and evaluation types.
type (
	// Record is the per-request outcome a system reports.
	Record = policy.Record
	// System is a scheduling system under test.
	System = policy.System
	// Catalog maps deployed model names to scheduler knowledge.
	Catalog = policy.Catalog
	// Scenario is a Table 2 workload scenario.
	Scenario = workload.Scenario
	// Arrival is one request arrival in a trace.
	Arrival = workload.Arrival
	// WorkloadConfig parameterizes trace generation.
	WorkloadConfig = workload.Config
	// Tracer records scheduling timelines.
	Tracer = trace.Tracer
	// Deployment is a prepared model+plan catalog with scenario helpers.
	Deployment = core.Deployment
	// Pipeline configures the offline splitting phase.
	Pipeline = core.Pipeline
	// GAConfig parameterizes the genetic algorithm.
	GAConfig = ga.Config
	// GAResult is a GA run outcome with per-generation telemetry.
	GAResult = ga.Result
	// Candidate is one profiled splitting option.
	Candidate = profiler.Candidate
	// QoSSummary is a compact per-run QoS digest.
	QoSSummary = metrics.Summary
)

// Serving types.
type (
	// Server is the real-time RPC serving path.
	Server = serve.Server
	// ServerConfig parameterizes a Server.
	//
	// Deprecated: the flat version-1 configuration, kept as a shim; use
	// NewServerWith with ServerOption values instead.
	ServerConfig = serve.Config
	// ServerOption is one functional server option (WithDevices,
	// WithPlacement, WithDeadlines, ...).
	ServerOption = serve.Option
	// ServerOptions is the versioned option set NewServerWith assembles.
	ServerOptions = serve.Options
	// Client talks to a Server.
	Client = serve.Client
	// InferReply is a completed request's QoS outcome.
	InferReply = serve.InferReply
)

// ServerOptionsVersion is the current server-options schema revision.
const ServerOptionsVersion = serve.OptionsVersion

// Functional server options for NewServerWith.
var (
	// WithDevices sets the fleet size (one executor and queue per device).
	WithDevices = serve.WithDevices
	// WithPlacement selects the fleet placement policy: "round-robin",
	// "least-loaded" or "affinity".
	WithPlacement = serve.WithPlacement
	// WithDeadlines enables α·t_ext deadline enforcement (alpha > 0 also
	// sets the scheduling α).
	WithDeadlines = serve.WithDeadlines
	// WithAlpha sets the latency-target multiplier.
	WithAlpha = serve.WithAlpha
	// WithTimeScale accelerates or slows the virtual clock.
	WithTimeScale = serve.WithTimeScale
	// WithElastic configures §3.3 elastic splitting.
	WithElastic = serve.WithElastic
	// WithMaxQueue caps the fleet-wide waiting-request count.
	WithMaxQueue = serve.WithMaxQueue
	// WithPredictiveShed sheds requests that can no longer meet their
	// deadline even if granted the device immediately.
	WithPredictiveShed = serve.WithPredictiveShed
	// WithFaults injects the deterministic fault schedule.
	WithFaults = serve.WithFaults
	// WithObs attaches a live metrics registry.
	WithObs = serve.WithObs
	// WithSink attaches a live scheduling-event sink.
	WithSink = serve.WithSink
	// WithQoSWindow sizes the rolling online QoS window.
	WithQoSWindow = serve.WithQoSWindow
)

// Request classes.
const (
	Short = model.Short
	Long  = model.Long
)

// LoadModel builds the named zoo model (one of Models()).
func LoadModel(name string) (*Graph, error) { return zoo.Load(name) }

// Models returns every model name in the zoo.
func Models() []string { return zoo.Names() }

// BenchmarkModels returns the five evaluation models of Table 1.
func BenchmarkModels() []string { return append([]string(nil), zoo.BenchmarkModels...) }

// DefaultCost returns the calibrated Jetson-Nano-like boundary cost model.
func DefaultCost() CostModel { return model.DefaultCostModel() }

// SplitModel runs the evenly-sized genetic splitting of §3.3 and returns a
// deployable plan with numBlocks blocks.
func SplitModel(g *Graph, numBlocks int, cm CostModel) (*SplitPlan, error) {
	p := profiler.New(g, cm)
	res, err := ga.Run(p, ga.DefaultConfig(numBlocks))
	if err != nil {
		return nil, err
	}
	return p.Plan(res.Best), nil
}

// SplitModelGA is SplitModel with full control over the GA configuration;
// it also returns the run telemetry (Figure 5 series).
func SplitModelGA(g *Graph, cm CostModel, cfg GAConfig) (*SplitPlan, *GAResult, error) {
	p := profiler.New(g, cm)
	res, err := ga.Run(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	return p.Plan(res.Best), res, nil
}

// DefaultGAConfig returns the paper-scale GA configuration for numBlocks.
func DefaultGAConfig(numBlocks int) GAConfig { return ga.DefaultConfig(numBlocks) }

// UnsplitPlan returns the trivial single-block plan for g.
func UnsplitPlan(g *Graph) *SplitPlan { return model.UnsplitPlan(g) }

// ExpectedWait evaluates Eq. 1 on a plan's block times: the expected
// waiting latency of a uniformly random arrival.
func ExpectedWait(blockTimesMs []float64) float64 {
	return analytic.ExpectedWait(blockTimesMs)
}

// NewCatalog assembles the scheduler catalog from graphs and plans (plans
// may be nil for unsplit deployment).
func NewCatalog(graphs map[string]*Graph, plans map[string]*SplitPlan) Catalog {
	return policy.NewCatalog(graphs, plans)
}

// Deploy builds the full paper deployment: the five benchmark models with
// GA split plans for the long models.
func Deploy() (*Deployment, error) { return core.DefaultPipeline().Deploy() }

// DefaultSystems returns the four evaluated systems (SPLIT, ClockWork,
// PREMA, RT-A) in the paper's order.
func DefaultSystems() []System { return core.DefaultSystems() }

// NewSystem constructs a system by display name: "SPLIT", "SPLIT-partial",
// "ClockWork", "PREMA", "PREMA-NPU", "RT-A", or "Stream-Parallel".
func NewSystem(name string) (System, error) { return core.SystemByName(name) }

// Scenarios returns the six Table 2 scenarios.
func Scenarios() []Scenario { return workload.Table2() }

// GenerateWorkload produces a seeded arrival trace.
func GenerateWorkload(cfg WorkloadConfig) ([]Arrival, error) { return workload.Generate(cfg) }

// ScenarioWorkload builds the standard per-task Poisson trace for a
// Table 2 scenario over the given models.
func ScenarioWorkload(sc Scenario, models []string, seed int64) ([]Arrival, error) {
	return workload.Generate(workload.ForScenario(sc, models, seed))
}

// NewTracer returns an event recorder to pass into System.Run.
func NewTracer() *Tracer { return trace.New() }

// Summarize digests one system's records into the headline QoS numbers.
func Summarize(system string, recs []Record) QoSSummary { return metrics.Summarize(system, recs) }

// ViolationRate returns the fraction of requests with response ratio > α.
func ViolationRate(recs []Record, alpha float64) float64 {
	return metrics.ViolationRate(recs, alpha)
}

// JitterByModel returns the per-model std deviation of end-to-end time.
func JitterByModel(recs []Record) map[string]float64 { return metrics.JitterByModel(recs) }

// SavePlan persists a split plan as JSON (the .onnx-block analogue).
func SavePlan(path string, p *SplitPlan) error { return onnxlite.SavePlan(path, p) }

// LoadPlan reads a persisted split plan.
func LoadPlan(path string) (*SplitPlan, error) { return onnxlite.LoadPlan(path) }

// SaveGraph persists a model graph as JSON.
func SaveGraph(path string, g *Graph) error { return onnxlite.SaveGraph(path, g) }

// LoadGraph reads a persisted model graph.
func LoadGraph(path string) (*Graph, error) { return onnxlite.LoadGraph(path) }

// NewServer builds the real-time RPC server from the flat config.
//
// Deprecated: use NewServerWith with functional options.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.NewServer(cfg) }

// NewServerWith builds the real-time RPC server from functional options —
// the versioned replacement for NewServer:
//
//	srv, err := split.NewServerWith(catalog,
//	    split.WithDevices(2), split.WithPlacement("least-loaded"),
//	    split.WithDeadlines(4))
func NewServerWith(catalog Catalog, opts ...ServerOption) (*Server, error) {
	return serve.New(catalog, opts...)
}

// Dial connects to a running server.
func Dial(addr string) (*Client, error) { return serve.Dial(addr) }

// Queueing-theory helpers (M/G/1 analysis of the workload).
type (
	// MG1 is the FCFS M/G/1 queue model validating the simulator.
	MG1 = queueing.MG1
	// ServiceMix is a discrete service-time distribution.
	ServiceMix = queueing.ServiceMix
	// MMPPConfig parameterizes the bursty workload extension.
	MMPPConfig = workload.MMPPConfig
)

// BenchmarkServiceMix returns the five-model uniform mix of the evaluation.
func BenchmarkServiceMix() ServiceMix {
	times := make([]float64, 0, len(zoo.BenchmarkModels))
	for _, name := range zoo.BenchmarkModels {
		times = append(times, zoo.Table1Latency[name])
	}
	return queueing.NewUniformMix(times)
}

// AnalyzeQueue builds the M/G/1 model for a mean inter-arrival time over
// the given mix: utilization, Pollaczek–Khinchine waits, violation-curve
// approximations.
func AnalyzeQueue(meanIntervalMs float64, mix ServiceMix) MG1 {
	return queueing.NewMG1FromInterval(meanIntervalMs, mix)
}

// GenerateMMPPWorkload produces a bursty two-state MMPP arrival trace.
func GenerateMMPPWorkload(cfg MMPPConfig) ([]Arrival, error) {
	return workload.GenerateMMPP(cfg)
}
